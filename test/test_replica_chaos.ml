(* Seeded replica-kill chaos for the replicated sharded warehouse.

   Per seed: a K=4, R=2 durable group ingests under an exact oracle
   (acked observations only), answers a healthy sweep, then loses ONE
   REPLICA OF EVERY SHARD mid-traffic.  The tentpole contract under
   that loss:

   - writes keep acking (the surviving replica of each shard accepts,
     shard-mates buffer hints for the dead one), with zero
     acknowledged-observation loss at every phase;
   - reads fail over: every fused answer stays UNDEGRADED — no
     [`Shard_down], no bound widening — because each shard still
     serves through a live replica at full ±ε·m precision;
   - rejoin drains the hint logs exactly once, after which both
     replicas of every shard carry bit-identical state: the
     anti-entropy digest pass flags nothing.

   HSQ_REPLICA_CHAOS_SEEDS scales the seed count (default 8; nightly
   CI runs 100). *)

module E = Hsq.Engine
module G = Hsq_shard.Shard_group
module Oracle = Hsq_workload.Oracle

let seeds =
  match Sys.getenv_opt "HSQ_REPLICA_CHAOS_SEEDS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 8)
  | None -> 8

let k = 4
let r = 2
let eps = 0.05

let temp_root seed =
  let dir = Filename.temp_file (Printf.sprintf "hsq_replica_chaos%d" seed) "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let sweep_ranks n =
  List.sort_uniq compare
    (List.filter (fun x -> x >= 1 && x <= n) [ 1; n / 10; n / 4; n / 2; (3 * n) / 4; n ])

(* Undegraded sweep: both query paths answer inside their self-reported
   bound against ground truth, report no degradation, and the bound
   itself stays within the full-precision ±ε·m contract (small additive
   slack for the stream summaries' own windows). *)
let check_sweep ~what g oracle =
  let n = G.total_size g in
  let contract = (2.0 *. eps *. float_of_int n) +. 50.0 in
  List.iter
    (fun rank ->
      let v, bound, deg = G.quick_with_bound g ~rank in
      (match deg with
      | `None -> ()
      | d -> Alcotest.failf "%s: quick rank %d degraded: %s" what rank (G.degradation_label d));
      let err = Oracle.rank_error oracle ~rank ~value:v in
      if float_of_int err > bound then
        Alcotest.failf "%s: quick rank %d error %d above bound %.1f" what rank err bound;
      if bound > contract then
        Alcotest.failf "%s: quick rank %d bound %.1f outside full-precision contract %.1f" what
          rank bound contract;
      let av, report = G.accurate g ~rank in
      (match report.G.degradation with
      | `None -> ()
      | d ->
        Alcotest.failf "%s: accurate rank %d degraded: %s" what rank (G.degradation_label d));
      let aerr = Oracle.rank_error oracle ~rank ~value:av in
      if float_of_int aerr > report.G.rank_error_bound then
        Alcotest.failf "%s: accurate rank %d error %d above bound %.1f" what rank aerr
          report.G.rank_error_bound)
    (sweep_ranks n)

let ingest_acked g oracle rng n domain =
  for _ = 1 to n do
    let v = Hsq_util.Xoshiro.int rng domain in
    match G.observe g v with
    | () -> Oracle.add oracle v
    | exception G.Shard_unavailable _ -> ()
  done

let end_step_all ~what g =
  List.iter
    (fun (s, res) ->
      if Result.is_error res then Alcotest.failf "%s: end_time_step failed on shard %d" what s)
    (G.end_time_step g)

let run_seed seed () =
  let root = temp_root seed in
  Fun.protect
    ~finally:(fun () -> try rm_rf root with _ -> ())
    (fun () ->
      let cfg =
        Hsq.Config.make ~kappa:3 ~block_size:32 ~shards:k ~replicas:r ~wal_dir:root
          ~checkpoint_every:500 (Hsq.Config.Epsilon eps)
      in
      let g, recoveries = G.open_or_recover cfg in
      List.iter
        (fun { G.shard; replica; outcome } ->
          if Result.is_error outcome then
            Alcotest.failf "shard %d replica %d dirty on fresh open" shard replica)
        recoveries;
      let rng = Hsq_util.Xoshiro.create (0x9E9E_0000 + seed) in
      let oracle = Oracle.create () in
      let domain = 1 + Hsq_util.Xoshiro.int rng 1_000_000 in

      (* healthy warm-up: archived steps plus a live tail *)
      for _ = 1 to 3 do
        ingest_acked g oracle rng (300 + Hsq_util.Xoshiro.int rng 200) domain;
        end_step_all ~what:"healthy" g
      done;
      ingest_acked g oracle rng 120 domain;
      Alcotest.(check int) "healthy: acked == stored" (Oracle.count oracle) (G.total_size g);
      check_sweep ~what:"healthy" g oracle;

      (* kill one replica of EVERY shard mid-traffic *)
      let victim i = (seed + i) mod r in
      for i = 0 to k - 1 do
        G.mark_replica_down g ~shard:i ~replica:(victim i) ~reason:"chaos: replica killed"
      done;
      Alcotest.(check int) "one replica down per shard" k (List.length (G.replicas_down g));
      Alcotest.(check (list int)) "no shard fully down" [] (G.shards_down g);

      (* traffic keeps flowing through the survivors; everything acks,
         and a time-step cut lands while half the fleet is dark *)
      ingest_acked g oracle rng (250 + Hsq_util.Xoshiro.int rng 150) domain;
      end_step_all ~what:"degraded" g;
      ingest_acked g oracle rng 150 domain;
      Alcotest.(check int) "degraded: acked == stored, zero loss" (Oracle.count oracle)
        (G.total_size g);

      (* hints are accumulating for each dead replica *)
      for i = 0 to k - 1 do
        match G.hints_pending g ~shard:i ~replica:(victim i) with
        | Some n when n > 0 -> ()
        | Some 0 -> Alcotest.failf "shard %d: hint log open but empty after acked traffic" i
        | _ -> Alcotest.failf "shard %d: no hint log for its dead replica" i
      done;

      (* THE tentpole assertion: answers stay fully undegraded — no
         [`Shard_down], no widening — with a replica of every shard dark *)
      check_sweep ~what:"failover" g oracle;

      (* heal: rejoin every dead replica; hint drain must be exactly-once *)
      for i = 0 to k - 1 do
        match G.rejoin_replica g ~shard:i ~replica:(victim i) with
        | Ok (_recovery, scrub) ->
          if scrub.Hsq.Persist.still_quarantined > 0 then
            Alcotest.failf "shard %d rejoin scrub left %d partitions quarantined" i
              scrub.Hsq.Persist.still_quarantined
        | Error msg -> Alcotest.failf "shard %d replica %d rejoin failed: %s" i (victim i) msg
      done;
      Alcotest.(check (list (pair int int))) "no replicas down after heal" []
        (G.replicas_down g);
      Alcotest.(check int) "healed: acked == stored, zero loss" (Oracle.count oracle)
        (G.total_size g);

      (* digest convergence: after the hint drain both replicas of every
         shard must agree bit-for-bit — the anti-entropy pass (which
         forces sketch checkpoints so the open step is covered too)
         flags nothing *)
      List.iter
        (fun (er : G.entropy_report) ->
          Alcotest.(check int)
            (Printf.sprintf "shard %d: both replicas digested" er.G.entropy_shard)
            r
            (List.length er.G.digests);
          match er.G.flagged with
          | [] -> ()
          | (j, d) :: _ ->
            Alcotest.failf "shard %d replica %d diverged after hint drain: %s"
              er.G.entropy_shard j d)
        (G.anti_entropy g);
      Alcotest.(check (list (pair int int))) "no divergence flagged" [] (G.diverged_replicas g);

      (* post-heal: more traffic, then an undegraded sweep *)
      ingest_acked g oracle rng 150 domain;
      end_step_all ~what:"healed" g;
      Alcotest.(check int) "post-heal: acked == stored" (Oracle.count oracle) (G.total_size g);
      check_sweep ~what:"healed" g oracle;
      G.close g;

      (* the whole store survives a cold restart with nothing lost *)
      let g2, recoveries2 = G.open_or_recover cfg in
      List.iter
        (fun { G.shard; replica; outcome } ->
          if Result.is_error outcome then
            Alcotest.failf "shard %d replica %d failed to recover on restart" shard replica)
        recoveries2;
      Alcotest.(check int) "restart: acked == stored" (Oracle.count oracle) (G.total_size g2);
      check_sweep ~what:"restart" g2 oracle;
      G.close g2)

let () =
  let cases =
    List.init seeds (fun seed ->
        Alcotest.test_case (Printf.sprintf "seed %d" seed) `Slow (run_seed seed))
  in
  Alcotest.run "replica_chaos" [ ("kill one replica of every shard", cases) ]
