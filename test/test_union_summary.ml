(* Tests for the union summary TS (Lemma 2) and filters (Lemma 4):
   every entry's [L, U] window brackets the true rank in T, windows are
   narrow, quick_select obeys Lemma 3, and filters bracket the target
   rank. *)

module SS = Hsq.Stream_summary
module US = Hsq.Union_summary
module LI = Hsq_hist.Level_index

(* Build a small warehouse + stream and return (union summary, all
   elements sorted, eps1, eps2, partition count). *)
let setup ?(kappa = 3) ?(beta1 = 6) ?(eps2 = 0.1) ~steps ~step_size ~stream_size ~seed () =
  let rng = Hsq_util.Xoshiro.create seed in
  let dev = Hsq_storage.Block_device.create_memory ~block_size:16 () in
  let li = LI.create ~kappa ~beta1 dev in
  let all = ref [] in
  for _ = 1 to steps do
    let b = Array.init step_size (fun _ -> Hsq_util.Xoshiro.int rng 100_000) in
    all := Array.to_list b @ !all;
    ignore (LI.add_batch li b)
  done;
  let gk = Hsq_sketch.Gk.create ~epsilon:(eps2 /. 2.0) in
  for _ = 1 to stream_size do
    let v = Hsq_util.Xoshiro.int rng 100_000 in
    Hsq_sketch.Gk.insert gk v;
    all := v :: !all
  done;
  let stream = SS.extract (Hsq.Stream_sketch.Gk gk) in
  let us = US.build ~partitions:(LI.partitions li) ~stream in
  let sorted = Array.of_list (List.sort compare !all) in
  (us, sorted, 1.0 /. float_of_int (beta1 - 1), eps2, LI.partition_count li)

let test_lemma2_brackets () =
  let us, sorted, _, _, _ = setup ~steps:9 ~step_size:500 ~stream_size:700 ~seed:61 () in
  Alcotest.(check int) "n_total" (Array.length sorted) (US.n_total us);
  Array.iter
    (fun (e : US.entry) ->
      let r = float_of_int (Hsq_util.Sorted.rank sorted e.value) in
      Alcotest.(check bool)
        (Printf.sprintf "L=%.1f <= rank(%d)=%.0f <= U=%.1f" e.lower e.value r e.upper)
        true
        (e.lower <= r && r <= e.upper))
    (US.entries us)

let test_lemma2_window_width () =
  let us, sorted, eps1, eps2, parts =
    setup ~steps:9 ~step_size:500 ~stream_size:700 ~seed:62 ()
  in
  let n = US.hist_elements us and m = US.m_stream us in
  let bound = Hsq.Errors.summary_window ~eps1 ~eps2 ~n ~m ~partitions:parts in
  ignore sorted;
  Array.iter
    (fun (e : US.entry) ->
      Alcotest.(check bool)
        (Printf.sprintf "U-L = %.1f <= %.1f" (e.upper -. e.lower) bound)
        true
        (e.upper -. e.lower <= bound))
    (US.entries us)

let test_lemma3_quick_select () =
  let us, sorted, eps1, eps2, parts =
    setup ~steps:13 ~step_size:400 ~stream_size:900 ~seed:63 ()
  in
  let n_total = US.n_total us in
  let bound =
    Hsq.Errors.quick_rank_bound ~eps1 ~eps2 ~n:(US.hist_elements us) ~m:(US.m_stream us)
      ~partitions:parts
  in
  List.iter
    (fun phi ->
      let r = int_of_float (ceil (phi *. float_of_int n_total)) in
      let v = US.quick_select us ~rank:r in
      let hi = Hsq_util.Sorted.rank sorted v in
      let lo = Hsq_util.Sorted.rank_strict sorted v + 1 in
      let err = if r < lo then lo - r else if r > hi then r - hi else 0 in
      Alcotest.(check bool)
        (Printf.sprintf "phi=%.3f err %d <= %.1f" phi err bound)
        true
        (float_of_int err <= bound))
    [ 0.001; 0.01; 0.1; 0.5; 0.9; 0.99; 1.0 ]

let test_lemma4_filters_bracket () =
  let us, sorted, _, _, _ = setup ~steps:9 ~step_size:400 ~stream_size:500 ~seed:64 () in
  let n_total = US.n_total us in
  List.iter
    (fun phi ->
      let r = int_of_float (ceil (phi *. float_of_int n_total)) in
      let u, v = US.filters us ~rank:r in
      Alcotest.(check bool) "u <= v" true (u <= v);
      let rank_u = Hsq_util.Sorted.rank sorted u in
      let rank_v = Hsq_util.Sorted.rank sorted v in
      Alcotest.(check bool)
        (Printf.sprintf "phi=%.2f rank(u)=%d <= r=%d" phi rank_u r)
        true (rank_u <= r);
      Alcotest.(check bool)
        (Printf.sprintf "phi=%.2f rank(v)=%d >= r=%d" phi rank_v r)
        true (rank_v >= r))
    [ 0.001; 0.05; 0.25; 0.5; 0.75; 0.95; 1.0 ]

let test_stream_only () =
  (* No historical partitions at all. *)
  let gk = Hsq_sketch.Gk.create ~epsilon:0.05 in
  for i = 1 to 1000 do
    Hsq_sketch.Gk.insert gk i
  done;
  let us = US.build ~partitions:[] ~stream:(SS.extract (Hsq.Stream_sketch.Gk gk)) in
  Alcotest.(check int) "n_total" 1000 (US.n_total us);
  let v = US.quick_select us ~rank:500 in
  Alcotest.(check bool) "median-ish" true (abs (v - 500) <= 200)

let test_hist_only () =
  (* Empty stream. *)
  let dev = Hsq_storage.Block_device.create_memory ~block_size:16 () in
  let li = LI.create ~kappa:2 ~beta1:11 dev in
  ignore (LI.add_batch li (Array.init 1000 (fun i -> i + 1)));
  let stream = SS.extract (Hsq.Stream_sketch.Gk (Hsq_sketch.Gk.create ~epsilon:0.05)) in
  let us = US.build ~partitions:(LI.partitions li) ~stream in
  Alcotest.(check int) "n_total" 1000 (US.n_total us);
  Alcotest.(check int) "m 0" 0 (US.m_stream us);
  (* With exact summary ranks and no stream, L=U at summary points. *)
  Array.iter
    (fun (e : US.entry) -> Alcotest.(check bool) "window tight" true (e.upper -. e.lower <= 101.0))
    (US.entries us)

let test_empty_raises () =
  let stream = SS.extract (Hsq.Stream_sketch.Gk (Hsq_sketch.Gk.create ~epsilon:0.05)) in
  let us = US.build ~partitions:[] ~stream in
  Alcotest.check_raises "quick on empty"
    (Invalid_argument "Union_summary.quick_select: empty summary") (fun () ->
      ignore (US.quick_select us ~rank:1))

let prop_lemma2_random =
  QCheck.Test.make ~name:"Lemma 2 brackets on random instances" ~count:30
    QCheck.(triple (int_range 1 8) (int_range 1 80) (int_range 0 120))
    (fun (steps, step_size, stream_size) ->
      let rng = Hsq_util.Xoshiro.create (steps + (step_size * 131) + stream_size) in
      let dev = Hsq_storage.Block_device.create_memory ~block_size:8 () in
      let li = LI.create ~kappa:2 ~beta1:4 dev in
      let all = ref [] in
      for _ = 1 to steps do
        let b = Array.init step_size (fun _ -> Hsq_util.Xoshiro.int rng 1000) in
        all := Array.to_list b @ !all;
        ignore (LI.add_batch li b)
      done;
      let gk = Hsq_sketch.Gk.create ~epsilon:0.05 in
      for _ = 1 to stream_size do
        let v = Hsq_util.Xoshiro.int rng 1000 in
        Hsq_sketch.Gk.insert gk v;
        all := v :: !all
      done;
      let us = US.build ~partitions:(LI.partitions li) ~stream:(SS.extract (Hsq.Stream_sketch.Gk gk)) in
      let sorted = Array.of_list (List.sort compare !all) in
      Array.for_all
        (fun (e : US.entry) ->
          let r = float_of_int (Hsq_util.Sorted.rank sorted e.value) in
          e.lower <= r && r <= e.upper)
        (US.entries us))

let () =
  Alcotest.run "union_summary"
    [
      ( "lemma 2",
        [
          Alcotest.test_case "L/U bracket ranks" `Quick test_lemma2_brackets;
          Alcotest.test_case "window width" `Quick test_lemma2_window_width;
          QCheck_alcotest.to_alcotest prop_lemma2_random;
        ] );
      ( "lemma 3 / quick",
        [ Alcotest.test_case "quick_select error" `Quick test_lemma3_quick_select ] );
      ( "lemma 4 / filters",
        [ Alcotest.test_case "filters bracket rank" `Quick test_lemma4_filters_bracket ] );
      ( "degenerate",
        [
          Alcotest.test_case "stream only" `Quick test_stream_only;
          Alcotest.test_case "hist only" `Quick test_hist_only;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
        ] );
    ]
