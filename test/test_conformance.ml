(* Statistical conformance suite: the paper's headline error bounds,
   checked end to end over adversarial workload shapes.

   For every (ε, workload) setting the suite drives an engine and an
   exact oracle through T archived time steps plus a live stream tail,
   then asserts at every decile and both tails (φ = 0.01, 0.99):

   - quick (Algorithm 5):    rank error ≤ ε·N + P + 2, where the P + 2
     term is the integer-rounding slack the summaries are allowed (one
     per partition summary plus the stream summary's two sides — the
     same slack Errors.summary_window charges). ε·N is the headline
     bound; the slack is a few units against bounds of hundreds.
   - accurate (Alg. 6–8):    rank error ≤ ε·m + 1 — proportional to the
     {e stream} only (Theorem 2), which is the paper's whole point.

   Workload shapes: uniform, sorted, reverse-sorted, Zipf-skewed and
   duplicate-heavy — sorted runs stress the partition summaries (every
   partition covers a narrow value band), skew/duplicates stress the
   rank-interval handling of repeated values.

   Inputs are QCheck-generated from a per-setting seed, so a failure
   reproduces exactly; there is no time- or PID-dependent state.

   Scaling: HSQ_CONFORMANCE_SCALE=<k> multiplies every step size and
   tail by k (the nightly job runs k > 1; the PR gate runs k = 1).

   Bound-sensitivity: the "checker has teeth" case feeds the checker a
   deliberately wrong answer and demands a violation, so a refactor
   that accidentally inflates the asserted bounds (or short-circuits
   the checker) fails the suite rather than passing vacuously. During
   development the suite was additionally mutation-checked: asserting
   the ε = 0.02 bounds against an engine built with ε = 0.1 fails, as
   does tightening either bound by 10×. *)

module E = Hsq.Engine
module Oracle = Hsq_workload.Oracle
module Gen = QCheck.Gen

let scale =
  match Sys.getenv_opt "HSQ_CONFORMANCE_SCALE" with
  | Some s -> ( match int_of_string_opt s with Some k when k >= 1 -> k | _ -> 1)
  | None -> 1

let universe = 1_000_000

(* --- QCheck-generated workload shapes ----------------------------------- *)

let raw gen seed n =
  let rand = Random.State.make [| 0x5eed; seed |] in
  Array.init n (fun _ -> Gen.generate1 ~rand gen)

let uniform_gen = Gen.int_bound (universe - 1)

(* Zipf-like skew via inverse-CDF of a Pareto tail: mass piles up on
   small values with a long tail across the universe. *)
let zipf_gen =
  Gen.map
    (fun u ->
      let u = Float.max u 1e-9 in
      min (universe - 1) (int_of_float (1.0 /. (u ** 1.15))))
    (Gen.float_bound_inclusive 1.0)

(* Nine in ten elements from a ten-value domain: ties dominate. *)
let dup_heavy_gen =
  Gen.frequency [ (9, Gen.int_bound 9); (1, Gen.int_bound (universe - 1)) ]

let workloads =
  [
    ("uniform", fun seed n -> raw uniform_gen seed n);
    ( "sorted",
      fun seed n ->
        let a = raw uniform_gen (seed + 1) n in
        Array.sort compare a;
        a );
    ( "reverse-sorted",
      fun seed n ->
        let a = raw uniform_gen (seed + 2) n in
        Array.sort (fun x y -> compare y x) a;
        a );
    ("zipf", fun seed n -> raw zipf_gen (seed + 3) n);
    ("duplicate-heavy", fun seed n -> raw dup_heavy_gen (seed + 4) n);
  ]

(* --- harness ------------------------------------------------------------- *)

let phis = [ 0.01; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.99 ]

type violation = { workload : string; phi : float; path : string; err : int; bound : float }

let pp_violation v =
  Printf.sprintf "%s phi=%.2f %s: rank error %d > bound %.1f" v.workload v.phi v.path v.err
    v.bound

(* Check one answer against its bound, as a reusable function so the
   teeth test below can exercise the same code path. *)
let check ~workload ~phi ~path ~err ~bound acc =
  if float_of_int err > bound then { workload; phi; path; err; bound } :: acc else acc

let run_workload ~sketch ~eps ~steps ~step_size ~tail ~seed (wname, gen) =
  let data = gen seed ((steps * step_size) + tail) in
  let config =
    Hsq.Config.make ~kappa:4 ~block_size:64 ~steps_hint:steps ~stream_sketch:sketch
      (Hsq.Config.Epsilon eps)
  in
  let eng = E.create config in
  let oracle = Oracle.create () in
  let archived = steps * step_size in
  Array.iteri
    (fun i v ->
      E.observe eng v;
      Oracle.add oracle v;
      if i < archived && (i + 1) mod step_size = 0 then ignore (E.end_time_step eng))
    data;
  let n = E.total_size eng in
  let m = E.stream_size eng in
  Alcotest.(check int) (wname ^ ": oracle and engine sizes agree") (Array.length data) n;
  Alcotest.(check int) (wname ^ ": live tail is the stream") tail m;
  let parts = Hsq_hist.Level_index.partition_count (E.hist eng) in
  let quick_bound = (eps *. float_of_int n) +. float_of_int parts +. 2.0 in
  let acc_bound = (eps *. float_of_int m) +. 1.0 in
  let violations =
    List.fold_left
      (fun acc phi ->
        let rank = max 1 (int_of_float (ceil (phi *. float_of_int n))) in
        let vq = E.quick eng ~rank in
        let va, _ = E.accurate eng ~rank in
        acc
        |> check ~workload:wname ~phi ~path:"quick"
             ~err:(Oracle.rank_error oracle ~rank ~value:vq)
             ~bound:quick_bound
        |> check ~workload:wname ~phi ~path:"accurate"
             ~err:(Oracle.rank_error oracle ~rank ~value:va)
             ~bound:acc_bound)
      [] phis
  in
  Hsq_storage.Block_device.close (E.device eng);
  violations

let run_setting ?(sketch = `Gk) ~eps ~steps ~step_size ~tail ~seed () =
  let violations =
    List.concat_map
      (fun w ->
        run_workload ~sketch ~eps ~steps ~step_size:(step_size * scale) ~tail:(tail * scale)
          ~seed w)
      workloads
  in
  match violations with
  | [] -> ()
  | vs -> Alcotest.failf "%d bound violations:\n%s" (List.length vs)
            (String.concat "\n" (List.map pp_violation vs))

(* The same grid over the mergeable KLL stream sketch: both ε₂ sketch
   kinds must honour the same envelopes (the engine's union estimator
   is sketch-agnostic; only the stream side's internals change). *)

(* --- the checker itself must be able to fail ----------------------------- *)

let test_checker_has_teeth () =
  let eps = 0.05 and steps = 4 and step_size = 800 and tail = 600 in
  let _, gen = List.hd workloads in
  let data = gen 0xbad ((steps * step_size) + tail) in
  let oracle = Oracle.create () in
  Array.iter (Oracle.add oracle) data;
  let n = Array.length data in
  let rank = n / 2 in
  let acc_bound = (eps *. float_of_int tail) +. 1.0 in
  (* An answer displaced by 4x the bound must be flagged... *)
  let off = Oracle.select oracle (rank + (4 * int_of_float acc_bound)) in
  let flagged =
    check ~workload:"teeth" ~phi:0.5 ~path:"accurate"
      ~err:(Oracle.rank_error oracle ~rank ~value:off)
      ~bound:acc_bound []
  in
  Alcotest.(check int) "displaced answer violates the bound" 1 (List.length flagged);
  (* ...and the exact answer must not be. *)
  let ok =
    check ~workload:"teeth" ~phi:0.5 ~path:"accurate"
      ~err:(Oracle.rank_error oracle ~rank ~value:(Oracle.select oracle rank))
      ~bound:acc_bound []
  in
  Alcotest.(check int) "exact answer passes" 0 (List.length ok)

(* Teeth for the KLL half of the grid: drive a real KLL-sketch engine
   and confirm (a) a displaced answer violates the asserted bounds —
   the KLL pass cannot succeed vacuously — and (b) the engine's own
   answers do not.  Mutation-checked like the GK teeth case: asserting
   the quick bound at ε/10 against this engine fails. *)
let test_kll_checker_has_teeth () =
  let eps = 0.05 and steps = 4 and step_size = 800 and tail = 600 in
  let _, gen = List.hd workloads in
  let data = gen 0x511 ((steps * step_size) + tail) in
  let config =
    Hsq.Config.make ~kappa:4 ~block_size:64 ~steps_hint:steps ~stream_sketch:`Kll
      (Hsq.Config.Epsilon eps)
  in
  let eng = E.create config in
  let oracle = Oracle.create () in
  let archived = steps * step_size in
  Array.iteri
    (fun i v ->
      E.observe eng v;
      Oracle.add oracle v;
      if i < archived && (i + 1) mod step_size = 0 then ignore (E.end_time_step eng))
    data;
  let n = E.total_size eng in
  let m = E.stream_size eng in
  let parts = Hsq_hist.Level_index.partition_count (E.hist eng) in
  let quick_bound = (eps *. float_of_int n) +. float_of_int parts +. 2.0 in
  let acc_bound = (eps *. float_of_int m) +. 1.0 in
  let rank = n / 2 in
  let displaced = Oracle.select oracle (min n (rank + (4 * int_of_float quick_bound))) in
  let flagged =
    check ~workload:"kll-teeth" ~phi:0.5 ~path:"quick"
      ~err:(Oracle.rank_error oracle ~rank ~value:displaced)
      ~bound:quick_bound []
  in
  Alcotest.(check int) "displaced answer violates the KLL quick bound" 1 (List.length flagged);
  let vq = E.quick eng ~rank in
  let va, _ = E.accurate eng ~rank in
  let own =
    []
    |> check ~workload:"kll-teeth" ~phi:0.5 ~path:"quick"
         ~err:(Oracle.rank_error oracle ~rank ~value:vq)
         ~bound:quick_bound
    |> check ~workload:"kll-teeth" ~phi:0.5 ~path:"accurate"
         ~err:(Oracle.rank_error oracle ~rank ~value:va)
         ~bound:acc_bound
  in
  Alcotest.(check int) "the KLL engine's own answers pass" 0 (List.length own);
  Hsq_storage.Block_device.close (E.device eng)

let () =
  Alcotest.run "conformance"
    [
      ( "error bounds",
        [
          Alcotest.test_case "eps=0.05 mid-size" `Quick
            (run_setting ~eps:0.05 ~steps:8 ~step_size:1_200 ~tail:900 ~seed:11);
          Alcotest.test_case "eps=0.02 tight" `Quick
            (run_setting ~eps:0.02 ~steps:12 ~step_size:2_500 ~tail:1_600 ~seed:23);
          Alcotest.test_case "eps=0.1 coarse" `Quick
            (run_setting ~eps:0.1 ~steps:5 ~step_size:700 ~tail:400 ~seed:37);
        ] );
      ( "error bounds (kll sketch)",
        [
          Alcotest.test_case "eps=0.05 mid-size" `Quick
            (run_setting ~sketch:`Kll ~eps:0.05 ~steps:8 ~step_size:1_200 ~tail:900 ~seed:11);
          Alcotest.test_case "eps=0.02 tight" `Quick
            (run_setting ~sketch:`Kll ~eps:0.02 ~steps:12 ~step_size:2_500 ~tail:1_600 ~seed:23);
          Alcotest.test_case "eps=0.1 coarse" `Quick
            (run_setting ~sketch:`Kll ~eps:0.1 ~steps:5 ~step_size:700 ~tail:400 ~seed:37);
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "checker has teeth" `Quick test_checker_has_teeth;
          Alcotest.test_case "kll checker has teeth" `Quick test_kll_checker_has_teeth;
        ] );
    ]
