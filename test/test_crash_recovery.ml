(* Crash-recovery fuzz harness.

   Each seed builds a file-backed warehouse, checkpoints the metadata
   after every archived step, then arms a countdown that tears a
   randomly chosen block write in half — a simulated power cut mid
   ingestion or mid merge. The process "dies" (we drop the engine),
   the warehouse is reopened from the last checkpoint, and we assert
   the merge commit protocol's promise: load succeeds, a full scrub is
   clean, and every quantile over the committed prefix is within the
   epsilon rank band.

   A second fuzz flips a random bit inside a live partition at rest and
   asserts the damage is *caught* — either by load's summary rebuild or
   by scrub's checksum sweep — never silently served. *)

module E = Hsq.Engine
module BD = Hsq_storage.Block_device

let eps = 0.05
let block_size = 16

let with_temp_files f =
  let dev_path = Filename.temp_file "hsq_crash" ".dev" in
  let meta_path = Filename.temp_file "hsq_crash" ".meta" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ dev_path; meta_path; meta_path ^ ".tmp" ])
    (fun () -> f ~dev_path ~meta_path)

(* One ingestion step of a random size; returns the batch. *)
let random_step rng eng =
  let n = 100 + Hsq_util.Xoshiro.int rng 300 in
  let batch = Array.init n (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000) in
  Array.iter (E.observe eng) batch;
  ignore (E.end_time_step eng);
  batch

let run_crash_seed seed =
  with_temp_files (fun ~dev_path ~meta_path ->
      let rng = Hsq_util.Xoshiro.create seed in
      let kappa = 2 + Hsq_util.Xoshiro.int rng 3 in
      let config = Hsq.Config.make ~kappa ~block_size (Hsq.Config.Epsilon eps) in
      let dev = BD.create_file ~block_size ~path:dev_path () in
      let eng = E.create ~device:dev config in
      (* Elements covered by the most recent durable checkpoint. *)
      let committed = ref [] in
      let archived = ref [] in
      let checkpoint () =
        Hsq.Persist.save eng ~path:meta_path;
        committed := !archived
      in
      let step () =
        let batch = random_step rng eng in
        archived := Array.to_list batch @ !archived
      in
      let warm = 1 + Hsq_util.Xoshiro.int rng 3 in
      for _ = 1 to warm do
        step ()
      done;
      checkpoint ();
      (* Arm the crash: the k-th block write from now on is torn and the
         device starts refusing service — the write path raises, which
         stands in for the process dying at that exact write. *)
      let countdown = ref (1 + Hsq_util.Xoshiro.int rng 60) in
      BD.set_injector dev
        (Some
           (fun op ~attempt:_ _ ->
             match op with
             | BD.Write ->
               decr countdown;
               if !countdown <= 0 then Some (BD.Torn (block_size / 2)) else None
             | BD.Read -> None));
      let crashed = ref false in
      (try
         for _ = 1 to 12 do
           step ();
           checkpoint ()
         done
       with BD.Device_error _ -> crashed := true);
      Alcotest.(check bool) (Printf.sprintf "seed %d: crash fired" seed) true !crashed;
      (* Simulated process death: drop all in-memory state, reopen. *)
      BD.close dev;
      let restored = Hsq.Persist.load_files ~device_path:dev_path ~meta_path () in
      let report = Hsq.Persist.scrub restored in
      if report.Hsq.Persist.errors <> [] then
        Alcotest.failf "seed %d: scrub after crash: %s" seed
          (String.concat "; " report.Hsq.Persist.errors);
      let n = E.total_size restored in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: exactly the committed prefix survives" seed)
        (List.length !committed) n;
      let oracle = Hsq_workload.Oracle.create () in
      List.iter (Hsq_workload.Oracle.add oracle) !committed;
      let band = int_of_float (ceil (eps *. float_of_int n)) + 1 in
      List.iter
        (fun phi ->
          let r = max 1 (int_of_float (ceil (phi *. float_of_int n))) in
          let v, rep = E.accurate restored ~rank:r in
          if rep.E.degradation <> `None then
            Alcotest.failf "seed %d: degraded answer on a healthy reopened device" seed;
          let err = Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v in
          if err > band then
            Alcotest.failf "seed %d: phi=%.2f rank error %d > band %d" seed phi err band)
        [ 0.05; 0.25; 0.5; 0.75; 0.95 ];
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d: invariants" seed)
        []
        (Hsq_hist.Level_index.check_invariants (E.hist restored));
      BD.close (E.device restored))

let run_bitflip_seed seed =
  with_temp_files (fun ~dev_path ~meta_path ->
      let rng = Hsq_util.Xoshiro.create (seed * 7919) in
      let config = Hsq.Config.make ~kappa:3 ~block_size (Hsq.Config.Epsilon eps) in
      let dev = BD.create_file ~block_size ~path:dev_path () in
      let eng = E.create ~device:dev config in
      for _ = 1 to 3 + Hsq_util.Xoshiro.int rng 3 do
        ignore (random_step rng eng)
      done;
      Hsq.Persist.save eng ~path:meta_path;
      (* Choose a random byte inside a random live partition's block
         span (checksum words included — damage there must be caught
         too) and flip one random bit. *)
      let parts = Hsq_hist.Level_index.partitions (E.hist eng) in
      let part = List.nth parts (Hsq_util.Xoshiro.int rng (List.length parts)) in
      let run = Hsq_hist.Partition.run part in
      let first_block = Hsq_storage.Run.first_block run in
      let nblocks = Hsq_storage.Run.nblocks run in
      BD.close dev;
      let bytes_per_block = (block_size + 1) * 8 in
      let span = nblocks * bytes_per_block in
      let off = (first_block * bytes_per_block) + Hsq_util.Xoshiro.int rng span in
      let bit = 1 lsl Hsq_util.Xoshiro.int rng 8 in
      let fd = Unix.openfile dev_path [ Unix.O_RDWR ] 0 in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor bit));
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      let caught_by_load =
        try
          let restored = Hsq.Persist.load_files ~device_path:dev_path ~meta_path () in
          let report = Hsq.Persist.scrub restored in
          BD.close (E.device restored);
          if report.Hsq.Persist.errors = [] then
            Alcotest.failf
              "seed %d: flipped bit at offset %d served silently (load and scrub both clean)"
              seed off;
          false
        with Hsq.Persist.Corrupt_metadata _ -> true
      in
      ignore caught_by_load)

(* --- ingest-crash fuzz: the durable WAL path --------------------------

   Each seed drives a durable store (Engine.open_or_recover) through
   several crash/recover rounds under a random sync policy and
   checkpoint interval.  Crashes strike at a random acknowledged point:
   either a WAL append fault (Fail = clean death, Torn = death
   mid-append) or a bare power cut between operations.  The oracle is
   the list of *acknowledged* observes, in order; the WAL's prefix
   property makes the contract exact:

   - the recovered element set is a prefix of the acknowledged
     sequence;
   - under sync=always the prefix is everything (zero acknowledged
     loss); under group:k at most k trailing records are lost; under
     never, at most everything since the last forced sync (commit
     marker or checkpoint);
   - quantiles over the recovered prefix stay inside the epsilon rank
     band, and the level-index invariants hold. *)

let run_ingest_crash_seed ?(stream_sketch = `Gk) seed =
  let store_dir = Filename.temp_file "hsq_ingest" "" in
  Sys.remove store_dir;
  Sys.mkdir store_dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists store_dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat store_dir f))
          (Sys.readdir store_dir);
        Sys.rmdir store_dir
      end)
    (fun () ->
      let rng = Hsq_util.Xoshiro.create (seed * 31 + 7) in
      let wal_sync =
        match Hsq_util.Xoshiro.int rng 3 with
        | 0 -> Hsq_storage.Wal.Always
        | 1 -> Hsq_storage.Wal.Group (1 + Hsq_util.Xoshiro.int rng 8)
        | _ -> Hsq_storage.Wal.Never
      in
      let checkpoint_every =
        match Hsq_util.Xoshiro.int rng 3 with
        | 0 -> 0 (* never checkpoint: recovery replays the whole open step *)
        | _ -> 1 + Hsq_util.Xoshiro.int rng 60
      in
      let config =
        Hsq.Config.make
          ~kappa:(2 + Hsq_util.Xoshiro.int rng 3)
          ~block_size ~wal_dir:store_dir ~wal_sync ~checkpoint_every ~stream_sketch
          (Hsq.Config.Epsilon eps)
      in
      let policy = Hsq_storage.Wal.sync_policy_to_string wal_sync in
      (* The model: acknowledged observes in order, and how many of them
         the sync policy has provably made durable. *)
      let acked = ref [] (* newest first *) in
      let acked_n = ref 0 in
      let synced_floor = ref 0 (* acked elements known flushed *) in
      let model_since_ckpt = ref 0 in
      let note_forced_sync () =
        synced_floor := !acked_n;
        model_since_ckpt := 0
      in
      let note_acked () =
        incr acked_n;
        (match wal_sync with
        | Hsq_storage.Wal.Always -> synced_floor := !acked_n
        | Hsq_storage.Wal.Group _ | Hsq_storage.Wal.Never -> ());
        if checkpoint_every > 0 then begin
          incr model_since_ckpt;
          if !model_since_ckpt >= checkpoint_every then note_forced_sync ()
        end
      in
      let loss_bound () =
        match wal_sync with
        | Hsq_storage.Wal.Always -> 0
        | Hsq_storage.Wal.Group k -> min k (!acked_n - !synced_floor)
        | Hsq_storage.Wal.Never -> !acked_n - !synced_floor
      in
      let rounds = 2 + Hsq_util.Xoshiro.int rng 2 in
      for round = 1 to rounds do
        let eng, report = E.open_or_recover config in
        let recovered_n = E.total_size eng in
        let lost = !acked_n - recovered_n in
        if lost < 0 then
          Alcotest.failf "seed %d round %d (%s): recovered %d > acknowledged %d" seed round
            policy recovered_n !acked_n;
        if lost > loss_bound () then
          Alcotest.failf "seed %d round %d (%s): lost %d acknowledged records, bound is %d"
            seed round policy lost (loss_bound ());
        (* Everything recovery claims durable IS durable now. *)
        acked := (if lost = 0 then !acked else List.filteri (fun i _ -> i >= lost) !acked);
        acked_n := recovered_n;
        note_forced_sync ();
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d round %d: invariants" seed round)
          []
          (Hsq_hist.Level_index.check_invariants (E.hist eng));
        (* Oracle check over the recovered prefix. *)
        if recovered_n > 0 then begin
          let oracle = Hsq_workload.Oracle.create () in
          List.iter (Hsq_workload.Oracle.add oracle) !acked;
          let band = int_of_float (ceil (eps *. float_of_int recovered_n)) + 1 in
          List.iter
            (fun phi ->
              let r = max 1 (int_of_float (ceil (phi *. float_of_int recovered_n))) in
              let v, rep = E.accurate eng ~rank:r in
              if rep.E.degradation <> `None then
                Alcotest.failf "seed %d round %d: degraded answer on a healthy store" seed
                  round;
              let err = Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v in
              if err > band then
                Alcotest.failf "seed %d round %d (%s): phi=%.2f rank error %d > band %d" seed
                  round policy phi err band)
            [ 0.1; 0.5; 0.9 ]
        end;
        ignore report;
        if round = rounds then E.close eng
        else begin
          (* Run until a random crash point.  A third of the crashes are
             injected WAL append faults (Fail or Torn), the rest are
             power cuts between operations. *)
          let injected = Hsq_util.Xoshiro.int rng 3 = 0 in
          let ops_before_cut = 1 + Hsq_util.Xoshiro.int rng 400 in
          if injected then begin
            let countdown = ref (1 + Hsq_util.Xoshiro.int rng 300) in
            let torn = Hsq_util.Xoshiro.int rng 2 = 0 in
            E.set_wal_injector eng
              (Some
                 (fun _seq ->
                   decr countdown;
                   if !countdown <= 0 then
                     Some
                       (if torn then Hsq_storage.Block_device.Torn 2
                        else Hsq_storage.Block_device.Fail)
                   else None))
          end;
          (try
             for _ = 1 to ops_before_cut do
               if Hsq_util.Xoshiro.int rng 150 = 0 && E.stream_size eng > 0 then begin
                 ignore (E.end_time_step eng);
                 note_forced_sync ()
               end
               else begin
                 let v = Hsq_util.Xoshiro.int rng 1_000_000 in
                 E.observe eng v;
                 (* Acknowledged only because observe returned. *)
                 acked := v :: !acked;
                 note_acked ()
               end
             done
           with BD.Device_error _ -> ());
          E.crash eng
        end
      done)

(* --- power-cut (missing directory fsync) regression -------------------

   tmp-write + rename is atomic against process crashes, but a power
   cut can undo a rename whose parent directory was never fsynced: the
   new file's blocks are durable while the directory entry still names
   the old one.  Every rename-commit site (metadata sidecar, sketch
   checkpoint, WAL truncation/rotation) goes through
   Atomic_file.commit — fsync tmp, rename, fsync parent dir.  The
   simulator proves both halves: a bare rename_unsynced IS rolled back
   by power_cut, and a full durable round under the armed simulator
   loses nothing acknowledged. *)

module AF = Hsq_storage.Atomic_file

let test_power_cut_rolls_back_unsynced () =
  let dir = Filename.temp_file "hsq_pcut" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      AF.set_crash_sim false;
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let dest = Filename.concat dir "meta" in
      let write_tmp contents =
        let tmp = Filename.concat dir "meta.tmp" in
        let oc = open_out_bin tmp in
        output_string oc contents;
        close_out oc;
        tmp
      in
      let read path =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      AF.commit ~tmp:(write_tmp "v1") dest;
      AF.set_crash_sim true;
      (* The buggy idiom this module replaced: rename, no directory fsync. *)
      AF.rename_unsynced ~tmp:(write_tmp "v2") dest;
      Alcotest.(check string) "rename visible before the cut" "v2" (read dest);
      Alcotest.(check int) "rename pending durability" 1 (AF.pending_renames ());
      AF.power_cut ();
      Alcotest.(check string) "un-fsynced rename rolled back" "v1" (read dest);
      (* The fixed idiom survives the same cut. *)
      AF.commit ~tmp:(write_tmp "v3") dest;
      Alcotest.(check int) "commit leaves nothing pending" 0 (AF.pending_renames ());
      AF.power_cut ();
      Alcotest.(check string) "committed rename survives the cut" "v3" (read dest);
      (* A fresh creation (no prior contents) disappears entirely. *)
      let dest2 = Filename.concat dir "side" in
      AF.rename_unsynced ~tmp:(write_tmp "first") dest2;
      AF.power_cut ();
      Alcotest.(check bool) "un-fsynced creation removed" false (Sys.file_exists dest2))

(* Durable rounds under the armed simulator: every crash is a power
   cut that first rolls back all un-fsynced renames.  sync=always makes
   the contract exact — zero acknowledged loss — so any rename-commit
   site that skips its directory fsync (a stale sidecar over a newer
   device, a resurrected pre-truncation WAL) fails this loudly. *)
let run_power_cut_seed seed =
  let store_dir = Filename.temp_file "hsq_pcut_e2e" "" in
  Sys.remove store_dir;
  Sys.mkdir store_dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      AF.set_crash_sim false;
      if Sys.file_exists store_dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat store_dir f))
          (Sys.readdir store_dir);
        Sys.rmdir store_dir
      end)
    (fun () ->
      let rng = Hsq_util.Xoshiro.create ((seed * 131) + 3) in
      let config =
        Hsq.Config.make ~kappa:3 ~block_size ~wal_dir:store_dir
          ~wal_sync:Hsq_storage.Wal.Always
          ~checkpoint_every:(1 + Hsq_util.Xoshiro.int rng 40)
          (Hsq.Config.Epsilon eps)
      in
      let acked = ref [] in
      let acked_n = ref 0 in
      AF.set_crash_sim true;
      let rounds = 3 in
      for round = 1 to rounds do
        let eng, _ = E.open_or_recover config in
        let recovered = E.total_size eng in
        if recovered <> !acked_n then
          Alcotest.failf
            "seed %d round %d: power cut lost %d acknowledged records under sync=always" seed
            round (!acked_n - recovered);
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d round %d: invariants" seed round)
          []
          (Hsq_hist.Level_index.check_invariants (E.hist eng));
        if recovered > 0 then begin
          let oracle = Hsq_workload.Oracle.create () in
          List.iter (Hsq_workload.Oracle.add oracle) !acked;
          let band = int_of_float (ceil (eps *. float_of_int recovered)) + 1 in
          let r = max 1 (recovered / 2) in
          let v, _ = E.accurate eng ~rank:r in
          let err = Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v in
          if err > band then
            Alcotest.failf "seed %d round %d: median rank error %d > band %d" seed round err
              band
        end;
        if round = rounds then E.close eng
        else begin
          let ops = 50 + Hsq_util.Xoshiro.int rng 300 in
          for _ = 1 to ops do
            if Hsq_util.Xoshiro.int rng 60 = 0 && E.stream_size eng > 0 then
              ignore (E.end_time_step eng)
            else begin
              let v = Hsq_util.Xoshiro.int rng 1_000_000 in
              E.observe eng v;
              acked := v :: !acked;
              incr acked_n
            end
          done;
          (* The process dies without any further durability actions,
             then the platter loses every rename whose directory fsync
             never happened. *)
          E.crash eng;
          AF.power_cut ()
        end
      done)

(* Seed counts scale through the environment: the PR-gating CI job runs
   the default, the nightly job cranks HSQ_CRASH_SEEDS up to hundreds. *)
let seed_count default =
  match Sys.getenv_opt "HSQ_CRASH_SEEDS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with Some n when n > 0 -> n | _ -> default)
  | None -> default

let crash_cases =
  List.init (seed_count 24) (fun i ->
      let seed = 1000 + (i * 37) in
      Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick (fun () -> run_crash_seed seed))

let bitflip_cases =
  List.init (seed_count 10) (fun i ->
      let seed = 500 + i in
      Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick (fun () -> run_bitflip_seed seed))

let ingest_cases =
  List.init (seed_count 24) (fun i ->
      let seed = 4000 + (i * 13) in
      Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick (fun () ->
          run_ingest_crash_seed seed))

(* The same WAL-path fuzz with the KLL stream sketch: its checkpoints
   carry a serialized compactor stack instead of a GK summary, so torn
   checkpoint images, replay determinism (coin-seed restore), and the
   loss bounds all get exercised against the second sketch kind. *)
let kll_ingest_cases =
  List.init (seed_count 16) (fun i ->
      let seed = 7000 + (i * 17) in
      Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick (fun () ->
          run_ingest_crash_seed ~stream_sketch:`Kll seed))

let power_cut_cases =
  Alcotest.test_case "rename_unsynced rolled back, commit survives" `Quick
    test_power_cut_rolls_back_unsynced
  :: List.init (seed_count 10) (fun i ->
         let seed = 9000 + (i * 11) in
         Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick (fun () ->
             run_power_cut_seed seed))

let () =
  Alcotest.run "crash_recovery"
    [
      ("torn write crash", crash_cases);
      ("bit flip at rest", bitflip_cases);
      ("ingest crash (WAL)", ingest_cases);
      ("ingest crash (WAL, kll sketch)", kll_ingest_cases);
      ("power cut (dir fsync)", power_cut_cases);
    ]
