(* Model-based fuzzing: drive the full system through random operation
   interleavings and check every answer against the exact oracle model.

   Operations: observe batches of random shape/distribution, close time
   steps, accurate/quick/window quantile queries, heavy-hitter queries,
   and (on file-backed runs) save/restore cycles.  Each sequence is
   deterministic in its seed; failures print the seed. *)

module E = Hsq.Engine

type op =
  | Observe of int (* how many elements *)
  | End_step
  | Query_accurate of float
  | Query_quick of float
  | Query_window of float
  | Query_range of float
  | Heavy of float
  | Expire of int (* keep_steps *)
  | Check_invariants

let gen_ops rng ~ops =
  List.init ops (fun _ ->
      match Hsq_util.Xoshiro.int rng 16 with
      | 0 | 1 | 2 | 3 -> Observe (1 + Hsq_util.Xoshiro.int rng 400)
      | 4 | 5 | 6 -> End_step
      | 7 | 8 -> Query_accurate (0.01 +. (0.98 *. Hsq_util.Xoshiro.float rng))
      | 9 -> Query_quick (0.01 +. (0.98 *. Hsq_util.Xoshiro.float rng))
      | 10 -> Query_window (0.01 +. (0.98 *. Hsq_util.Xoshiro.float rng))
      | 11 -> Heavy (0.05 +. (0.3 *. Hsq_util.Xoshiro.float rng))
      | 12 -> Query_range (0.01 +. (0.98 *. Hsq_util.Xoshiro.float rng))
      | 13 -> Expire (1 + Hsq_util.Xoshiro.int rng 20)
      | _ -> Check_invariants)

(* Values from a mixture of distributions so duplicates, skew, and wide
   ranges all occur within one run. *)
let gen_value rng =
  match Hsq_util.Xoshiro.int rng 4 with
  | 0 -> Hsq_util.Xoshiro.int rng 20 (* heavy duplicates *)
  | 1 -> Hsq_util.Xoshiro.int rng 1_000_000
  | 2 -> 500_000 + Hsq_util.Xoshiro.int rng 100 (* tight cluster *)
  | _ -> 1 lsl (4 + Hsq_util.Xoshiro.int rng 20) (* exponential spread *)

(* Frequencies of the current dataset for heavy-hitter checking. *)
let exact_frequencies all =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun v ->
      match Hashtbl.find_opt tbl v with
      | Some c -> incr c
      | None -> Hashtbl.add tbl v (ref 1))
    all;
  tbl

let run_sequence ~seed ~ops =
  let rng = Hsq_util.Xoshiro.create seed in
  let kappa = 2 + Hsq_util.Xoshiro.int rng 9 in
  let config = Hsq.Config.make ~kappa ~block_size:16 (Hsq.Config.Epsilon 0.05) in
  let hh = Hsq.Heavy_hitters.create ~capacity:64 config in
  let eng = Hsq.Heavy_hitters.engine hh in
  let oracle = ref (Hsq_workload.Oracle.create ()) in
  let all = ref [] in
  let stream_elems = ref [] in
  (* per-step archives, newest first as (step, elements) — the model for
     expire and range queries *)
  let archived : (int * int list) list ref = ref [] in
  let current_step = ref [] in
  let rebuild_oracle () =
    let o = Hsq_workload.Oracle.create () in
    List.iter (fun (_, elems) -> List.iter (Hsq_workload.Oracle.add o) elems) !archived;
    List.iter (Hsq_workload.Oracle.add o) !stream_elems;
    oracle := o;
    all := List.concat_map snd !archived @ !stream_elems
  in
  let fail fmt = Printf.ksprintf (fun msg -> Alcotest.failf "seed %d: %s" seed msg) fmt in
  let check_quantile ~quick phi =
    let n = E.total_size eng in
    if n > 0 then begin
      let r = max 1 (int_of_float (ceil (phi *. float_of_int n))) in
      let v = if quick then E.quick eng ~rank:r else fst (E.accurate eng ~rank:r) in
      let err = Hsq_workload.Oracle.rank_error !oracle ~rank:r ~value:v in
      let m = E.stream_size eng in
      let bound =
        if quick then
          (* Lemma 3 with the engine's eps1/eps2 *)
          let eps1 = 1.0 /. float_of_int (Hsq.Config.beta1 config - 1) in
          Hsq.Errors.quick_rank_bound ~eps1 ~eps2:(E.eps2 eng) ~n:(E.hist_size eng) ~m
            ~partitions:(Hsq_hist.Level_index.partition_count (E.hist eng))
        else Hsq.Errors.accurate_rank_bound ~eps:(E.epsilon eng) ~eps2:(E.eps2 eng) ~m
      in
      if float_of_int err > bound then
        fail "%s query phi=%.3f err=%d > bound=%.1f (n=%d m=%d)"
          (if quick then "quick" else "accurate")
          phi err bound n m
    end
  in
  List.iter
    (fun op ->
      match op with
      | Observe count ->
        for _ = 1 to count do
          let v = gen_value rng in
          Hsq.Heavy_hitters.observe hh v;
          Hsq_workload.Oracle.add !oracle v;
          all := v :: !all;
          stream_elems := v :: !stream_elems;
          current_step := v :: !current_step
        done
      | End_step ->
        if E.stream_size eng > 0 then begin
          ignore (Hsq.Heavy_hitters.end_time_step hh);
          archived := (E.time_steps eng, !current_step) :: !archived;
          current_step := [];
          stream_elems := []
        end
      | Expire keep ->
        if E.time_steps eng > 0 then begin
          let _parts, dropped = E.expire eng ~keep_steps:keep in
          let through = Hsq_hist.Level_index.expired_through (E.hist eng) in
          let retained, gone = List.partition (fun (s, _) -> s > through) !archived in
          let gone_elems = List.fold_left (fun acc (_, e) -> acc + List.length e) 0 gone in
          if gone_elems <> dropped then
            fail "expire dropped %d elements, model says %d" dropped gone_elems;
          archived := retained;
          rebuild_oracle ();
          match Hsq_hist.Level_index.check_invariants (E.hist eng) with
          | [] -> ()
          | errs -> fail "invariants after expire: %s" (String.concat "; " errs)
        end
      | Query_range phi -> (
        (* pick a random aligned range from the partition boundaries *)
        let bounds = Hsq_hist.Level_index.partition_boundaries (E.hist eng) in
        match bounds with
        | [] -> ()
        | _ ->
          let k = List.length bounds in
          let i = Hsq_util.Xoshiro.int rng k in
          let j = i + Hsq_util.Xoshiro.int rng (k - i) in
          let first = fst (List.nth bounds i) and last = snd (List.nth bounds j) in
          (match E.quantile_range eng ~first ~last phi with
          | Error (E.Range_not_aligned _) -> fail "aligned range [%d,%d] rejected" first last
          | Ok (v, _) ->
            (* exact model: elements of steps [first, last] only *)
            let o = Hsq_workload.Oracle.create () in
            List.iter
              (fun (s, elems) ->
                if s >= first && s <= last then List.iter (Hsq_workload.Oracle.add o) elems)
              !archived;
            let n = Hsq_workload.Oracle.count o in
            if n > 0 then begin
              let r = max 1 (int_of_float (ceil (phi *. float_of_int n))) in
              let err = Hsq_workload.Oracle.rank_error o ~rank:r ~value:v in
              (* no stream in range queries: near-exact *)
              if err > 1 then fail "range [%d,%d] phi=%.3f err=%d" first last phi err
            end))
      | Query_accurate phi -> check_quantile ~quick:false phi
      | Query_quick phi -> check_quantile ~quick:true phi
      | Query_window phi -> (
        let windows = E.window_sizes eng in
        match windows with
        | [] -> ()
        | _ ->
          let w = List.nth windows (Hsq_util.Xoshiro.int rng (List.length windows)) in
          (match E.quantile_window eng ~window:w phi with
          | Ok (_v, _) -> () (* window oracle checked in test_engine; here: no crash *)
          | Error (E.Window_not_aligned _) -> fail "advertised window %d rejected" w))
      | Heavy phi ->
        if E.total_size eng > 0 && phi >= 1.0 /. 64.0 then begin
          let hits, _ = Hsq.Heavy_hitters.frequent hh ~phi in
          let n = E.total_size eng in
          let threshold = int_of_float (ceil (phi *. float_of_int n)) in
          let freq = exact_frequencies !all in
          Hashtbl.iter
            (fun v c ->
              if
                !c >= threshold
                && not (List.exists (fun (h : Hsq.Heavy_hitters.hit) -> h.value = v) hits)
              then fail "heavy hitter %d (count %d >= %d) missed" v !c threshold)
            freq;
          List.iter
            (fun (h : Hsq.Heavy_hitters.hit) ->
              let truth = match Hashtbl.find_opt freq h.value with Some c -> !c | None -> 0 in
              if not (h.lower <= truth && truth <= h.upper) then
                fail "hit %d bounds [%d,%d] miss true %d" h.value h.lower h.upper truth)
            hits
        end
      | Check_invariants -> (
        match Hsq_hist.Level_index.check_invariants (E.hist eng) with
        | [] -> ()
        | errs -> fail "invariants: %s" (String.concat "; " errs)))
    (gen_ops rng ~ops);
  (* Final deep check: the stored multiset equals the oracle's. *)
  match Hsq_hist.Level_index.check_invariants (E.hist eng) with
  | [] -> ()
  | errs -> fail "final invariants: %s" (String.concat "; " errs)

let test_fuzz_sequences () =
  for seed = 1 to 30 do
    run_sequence ~seed ~ops:60
  done

let test_fuzz_long_sequence () = run_sequence ~seed:424242 ~ops:400

(* Save/restore fuzz: random build, persist, reload, compare answers. *)
let test_fuzz_persistence () =
  for seed = 100 to 110 do
    let rng = Hsq_util.Xoshiro.create seed in
    let dev_path = Filename.temp_file "hsq_fuzz" ".dev" in
    let meta_path = Filename.temp_file "hsq_fuzz" ".meta" in
    Fun.protect
      ~finally:(fun () ->
        Sys.remove dev_path;
        Sys.remove meta_path)
      (fun () ->
        let kappa = 2 + Hsq_util.Xoshiro.int rng 5 in
        let config = Hsq.Config.make ~kappa ~block_size:16 (Hsq.Config.Epsilon 0.05) in
        let dev = Hsq_storage.Block_device.create_file ~block_size:16 ~path:dev_path () in
        let eng = E.create ~device:dev config in
        let steps = 1 + Hsq_util.Xoshiro.int rng 12 in
        for _ = 1 to steps do
          let batch = Array.init (1 + Hsq_util.Xoshiro.int rng 300) (fun _ -> gen_value rng) in
          ignore (E.ingest_batch eng batch)
        done;
        let before =
          List.map (fun r -> fst (E.accurate eng ~rank:r)) [ 1; E.total_size eng / 2; E.total_size eng ]
        in
        Hsq.Persist.save eng ~path:meta_path;
        Hsq_storage.Block_device.close dev;
        let restored = Hsq.Persist.load_files ~device_path:dev_path ~meta_path () in
        let after =
          List.map
            (fun r -> fst (E.accurate restored ~rank:r))
            [ 1; E.total_size restored / 2; E.total_size restored ]
        in
        if before <> after then
          Alcotest.failf "seed %d: answers changed across save/load: %s vs %s" seed
            (String.concat "," (List.map string_of_int before))
            (String.concat "," (List.map string_of_int after));
        Hsq_storage.Block_device.close (E.device restored))
  done

let () =
  Alcotest.run "fuzz"
    [
      ( "model-based",
        [
          Alcotest.test_case "30 random sequences" `Quick test_fuzz_sequences;
          Alcotest.test_case "one long sequence" `Quick test_fuzz_long_sequence;
          Alcotest.test_case "save/restore answers stable" `Quick test_fuzz_persistence;
        ] );
    ]
