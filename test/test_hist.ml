(* Tests for hsq_hist: partition summaries (Algorithm 2), partitions,
   and the leveled index (Algorithm 3 / Figure 2). *)

module PS = Hsq_hist.Partition_summary
module P = Hsq_hist.Partition
module LI = Hsq_hist.Level_index

let mem_dev ?(block_size = 16) () = Hsq_storage.Block_device.create_memory ~block_size ()

(* --- Partition_summary ------------------------------------------------ *)

let test_summary_figure3_example () =
  (* Figure 3: partition P1 = 1..100, eps1 = 1/4 => beta1 = 5, summary
     = [1; 25; 50; 75; 100]. *)
  let data = Array.init 100 (fun i -> i + 1) in
  let s = PS.of_sorted_array ~beta1:5 data in
  let values = Array.map (fun (e : PS.entry) -> e.value) (PS.entries s) in
  Alcotest.(check (array int)) "figure 3 summary" [| 1; 25; 50; 75; 100 |] values

let test_summary_entries_have_exact_indices () =
  let data = Array.init 997 (fun i -> 3 * i) in
  let s = PS.of_sorted_array ~beta1:11 data in
  Array.iter
    (fun (e : PS.entry) -> Alcotest.(check int) "value at index" data.(e.index) e.value)
    (PS.entries s)

let test_summary_spacing () =
  (* Consecutive captured indices differ by at most ceil(eta/(beta1-1)). *)
  let eta = 1234 and beta1 = 9 in
  let data = Array.init eta (fun i -> i) in
  let s = PS.of_sorted_array ~beta1 data in
  let entries = PS.entries s in
  let max_gap = (eta + beta1 - 2) / (beta1 - 1) in
  for i = 1 to Array.length entries - 1 do
    Alcotest.(check bool) "spacing" true (entries.(i).index - entries.(i - 1).index <= max_gap)
  done;
  Alcotest.(check int) "first is min" 0 entries.(0).index;
  Alcotest.(check int) "last is max" (eta - 1) entries.(Array.length entries - 1).index

let test_summary_tiny_partition () =
  let s = PS.of_sorted_array ~beta1:8 [| 5 |] in
  Alcotest.(check int) "one entry" 1 (PS.length s);
  let s2 = PS.of_sorted_array ~beta1:8 [| 1; 2 |] in
  Alcotest.(check bool) "dedup" true (PS.length s2 <= 2)

let test_summary_rank_bounds_bracket () =
  let data = Array.init 500 (fun i -> 2 * i) in
  let s = PS.of_sorted_array ~beta1:6 data in
  List.iter
    (fun v ->
      let lo, hi = PS.rank_bounds s v in
      let true_rank = Hsq_util.Sorted.rank data v in
      Alcotest.(check bool)
        (Printf.sprintf "bounds bracket rank(%d)=%d in [%d,%d]" v true_rank lo hi)
        true
        (lo <= true_rank && true_rank <= hi))
    [ -5; 0; 1; 2; 500; 501; 998; 999; 2000 ]

let test_summary_builder_requires_all () =
  let b = PS.builder ~beta1:4 ~size:10 in
  PS.builder_feed b 0 1;
  Alcotest.check_raises "incomplete"
    (Invalid_argument "Partition_summary.builder_finish: not all elements were fed") (fun () ->
      ignore (PS.builder_finish b))

let prop_rank_bounds =
  QCheck.Test.make ~name:"summary rank bounds always bracket" ~count:200
    QCheck.(triple (list_of_size Gen.(1 -- 300) (int_bound 1000)) (int_range 2 20) (int_bound 1100))
    (fun (l, beta1, probe) ->
      let data = Array.of_list (List.sort compare l) in
      let s = PS.of_sorted_array ~beta1 data in
      let lo, hi = PS.rank_bounds s probe in
      let r = Hsq_util.Sorted.rank data probe in
      lo <= r && r <= hi)

(* --- Level_index ------------------------------------------------------ *)

let batch_of rng n = Array.init n (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000)

let build_index ?(kappa = 3) ?(beta1 = 6) ?(steps = 13) ?(step_size = 300) ~seed () =
  let rng = Hsq_util.Xoshiro.create seed in
  let dev = mem_dev () in
  let li = LI.create ~kappa ~beta1 dev in
  let all = ref [] in
  for _ = 1 to steps do
    let b = batch_of rng step_size in
    all := Array.to_list b @ !all;
    ignore (LI.add_batch li b)
  done;
  (li, Array.of_list !all)

let test_figure2_evolution () =
  (* Figure 2, kappa = 2: after 3 steps level 0 collapses into P_{1,3};
     after 13 steps the structure is P_{1,9} | P_{10,12} | P_13. *)
  let dev = mem_dev () in
  let li = LI.create ~kappa:2 ~beta1:4 dev in
  for _ = 1 to 13 do
    ignore (LI.add_batch li [| 1; 2; 3 |])
  done;
  let describe p = (P.first_step p, P.last_step p, P.level p) in
  let parts = List.map describe (LI.partitions li) in
  Alcotest.(check (list (triple int int int)))
    "figure 2 state after 13 steps"
    [ (13, 13, 0); (10, 12, 1); (1, 9, 2) ]
    parts

let test_invariants_across_kappas () =
  List.iter
    (fun kappa ->
      let li, _ = build_index ~kappa ~steps:25 ~step_size:100 ~seed:(100 + kappa) () in
      Alcotest.(check (list string)) (Printf.sprintf "kappa=%d invariants" kappa) []
        (LI.check_invariants li))
    [ 2; 3; 5; 10 ]

let test_multiset_preserved () =
  let li, all = build_index ~seed:42 () in
  let stored =
    List.concat_map (fun p -> Array.to_list (Hsq_storage.Run.to_array (P.run p))) (LI.partitions li)
  in
  Alcotest.(check int) "total elements" (Array.length all) (LI.total_elements li);
  Alcotest.(check (list int)) "same multiset" (List.sort compare (Array.to_list all))
    (List.sort compare stored)

let test_rank_exact () =
  let li, all = build_index ~seed:43 () in
  Array.sort compare all;
  List.iter
    (fun v ->
      Alcotest.(check int) (Printf.sprintf "rank %d" v) (Hsq_util.Sorted.rank all v) (LI.rank li v))
    [ -1; 0; all.(0); all.(100); all.(Array.length all - 1); max_int / 4 ]

let test_level_count_logarithmic () =
  let li, _ = build_index ~kappa:3 ~steps:40 ~step_size:50 ~seed:44 () in
  (* ceil(log3 40) + 1 = 5 levels max *)
  Alcotest.(check bool) "levels bounded" true (LI.num_levels li <= 5)

let test_update_report_merge_accounting () =
  let dev = mem_dev () in
  let li = LI.create ~kappa:2 ~beta1:4 dev in
  (* Steps 1-2: no merge.  Step 3: level-0 merge. *)
  ignore (LI.add_batch li [| 1; 2 |]);
  let r2 = LI.add_batch li [| 3; 4 |] in
  Alcotest.(check int) "no merge yet" 0 r2.LI.merges_performed;
  Alcotest.(check int) "no merge io" 0 (Hsq_storage.Io_stats.total r2.LI.io_merge);
  let r3 = LI.add_batch li [| 5; 6 |] in
  Alcotest.(check int) "merge at step 3" 1 r3.LI.merges_performed;
  Alcotest.(check bool) "merge io > 0" true (Hsq_storage.Io_stats.total r3.LI.io_merge > 0)

let test_load_io_proportional_to_batch () =
  let dev = mem_dev ~block_size:16 () in
  let li = LI.create ~kappa:10 ~beta1:4 dev in
  let r = LI.add_batch li (Array.init 160 (fun i -> i)) in
  (* 160 elements / 16 per block = 10 block writes, no reads. *)
  Alcotest.(check int) "writes" 10 r.LI.io_total.Hsq_storage.Io_stats.writes;
  Alcotest.(check int) "reads" 0 r.LI.io_total.Hsq_storage.Io_stats.reads

let test_empty_batch_rejected () =
  let li = LI.create ~kappa:2 ~beta1:4 (mem_dev ()) in
  Alcotest.check_raises "empty" (Invalid_argument "Level_index.add_batch: empty batch") (fun () ->
      ignore (LI.add_batch li [||]))

let test_window_sizes_kappa3 () =
  let dev = mem_dev () in
  let li = LI.create ~kappa:3 ~beta1:4 dev in
  for _ = 1 to 13 do
    ignore (LI.add_batch li [| 1; 2; 3 |])
  done;
  (* kappa=3: merges at steps 4, 8, 12 -> partitions P1-4, P5-8, P9-12
     at level 1 and P13 at level 0. *)
  Alcotest.(check (list int)) "windows" [ 1; 5; 9; 13 ] (LI.available_window_sizes li)

let test_window_partitions () =
  let dev = mem_dev () in
  let li = LI.create ~kappa:3 ~beta1:4 dev in
  for s = 1 to 13 do
    ignore (LI.add_batch li [| s; s; s |])
  done;
  (match LI.partitions_for_window li 5 with
  | None -> Alcotest.fail "window 5 should be available"
  | Some ps ->
    let total = List.fold_left (fun acc p -> acc + P.size p) 0 ps in
    Alcotest.(check int) "window 5 holds 5 steps of data" 15 total;
    List.iter
      (fun p -> Alcotest.(check bool) "covers last 5 steps" true (P.first_step p >= 9))
      ps);
  Alcotest.(check bool) "window 2 unaligned" true (LI.partitions_for_window li 2 = None);
  Alcotest.(check bool) "window 0 rejected" true (LI.partitions_for_window li 0 = None);
  Alcotest.(check bool) "window too large" true (LI.partitions_for_window li 14 = None)

let test_memory_words_tracks_summaries () =
  let li, _ = build_index ~beta1:10 ~seed:45 () in
  let manual =
    List.fold_left (fun acc p -> acc + P.memory_words p) 16 (LI.partitions li)
  in
  Alcotest.(check int) "memory accounting" manual (LI.memory_words li)

let prop_invariants_random_schedules =
  QCheck.Test.make ~name:"level index invariants for random schedules" ~count:40
    QCheck.(triple (int_range 2 6) (int_range 1 30) (int_range 1 60))
    (fun (kappa, steps, step_size) ->
      let dev = mem_dev ~block_size:8 () in
      let li = LI.create ~kappa ~beta1:4 dev in
      let rng = Hsq_util.Xoshiro.create (kappa + (steps * 31)) in
      for _ = 1 to steps do
        ignore (LI.add_batch li (batch_of rng step_size))
      done;
      LI.check_invariants li = [] && LI.time_steps li = steps)

let prop_rank_matches_oracle =
  QCheck.Test.make ~name:"index rank = oracle rank" ~count:40
    QCheck.(pair (list_of_size Gen.(1 -- 200) (int_bound 500)) (int_bound 600))
    (fun (l, probe) ->
      let dev = mem_dev ~block_size:8 () in
      let li = LI.create ~kappa:2 ~beta1:4 dev in
      (* split l into batches of <= 20 *)
      let rec chunks = function
        | [] -> []
        | l ->
          let take = min 20 (List.length l) in
          let rec split i acc rest =
            if i = 0 then (List.rev acc, rest)
            else match rest with [] -> (List.rev acc, []) | x :: xs -> split (i - 1) (x :: acc) xs
          in
          let batch, rest = split take [] l in
          batch :: chunks rest
      in
      List.iter (fun b -> ignore (LI.add_batch li (Array.of_list b))) (chunks l);
      let sorted = Array.of_list (List.sort compare l) in
      LI.rank li probe = Hsq_util.Sorted.rank sorted probe)

let test_lemma6_amortized_merge_io () =
  (* Lemma 6: total merge I/O over T steps is O((n/B) * log_kappa T) —
     each element is read+written at most once per level of merging. *)
  List.iter
    (fun kappa ->
      let block_size = 16 in
      let dev = mem_dev ~block_size () in
      let li = LI.create ~kappa ~beta1:4 dev in
      let steps = 40 and step_size = 160 in
      let rng = Hsq_util.Xoshiro.create (500 + kappa) in
      let merge_io = ref 0 in
      for _ = 1 to steps do
        let r = LI.add_batch li (batch_of rng step_size) in
        merge_io := !merge_io + Hsq_storage.Io_stats.total r.LI.io_merge
      done;
      let n = steps * step_size in
      let levels =
        int_of_float (ceil (log (float_of_int steps) /. log (float_of_int kappa)))
      in
      (* reads + writes: 2 block-accesses per element-block per level *)
      let bound = 2 * ((n / block_size) + steps) * levels in
      Alcotest.(check bool)
        (Printf.sprintf "kappa=%d merge io %d <= %d" kappa !merge_io bound)
        true
        (!merge_io <= bound))
    [ 2; 3; 5; 10 ]

let test_expire_drops_old_partitions () =
  let dev = mem_dev () in
  let li = LI.create ~kappa:3 ~beta1:4 dev in
  for s = 1 to 13 do
    ignore (LI.add_batch li (Array.make 30 s))
  done;
  (* partitions: P1-4, P5-8, P9-12, P13 *)
  let parts, elems = LI.expire li ~keep_steps:5 in
  (* cutoff = 8: P1-4 and P5-8 drop; P9-12 straddles nothing (last=12>8) *)
  Alcotest.(check int) "partitions dropped" 2 parts;
  Alcotest.(check int) "elements dropped" (8 * 30) elems;
  Alcotest.(check int) "total shrank" (5 * 30) (LI.total_elements li);
  Alcotest.(check int) "expired through" 8 (LI.expired_through li);
  Alcotest.(check (list string)) "invariants after expire" [] (LI.check_invariants li);
  (* windows still work over the retained suffix *)
  Alcotest.(check (list int)) "windows" [ 1; 5 ] (LI.available_window_sizes li);
  (* ranks only cover the retained data *)
  Alcotest.(check int) "rank over retained" (5 * 30) (LI.rank li 100);
  (* expiring again with a huge keep is a no-op *)
  Alcotest.(check (pair int int)) "no-op expire" (0, 0) (LI.expire li ~keep_steps:100);
  (* straddling partitions are kept whole: cutoff 11 falls inside
     P9-12, which therefore survives in full *)
  let parts2, _ = LI.expire li ~keep_steps:2 in
  Alcotest.(check int) "straddler kept" 0 parts2;
  Alcotest.(check int) "straddler data intact" (5 * 30) (LI.total_elements li);
  Alcotest.check_raises "bad keep" (Invalid_argument "Level_index.expire: keep_steps must be >= 1")
    (fun () -> ignore (LI.expire li ~keep_steps:0))

let test_expire_then_continue () =
  let dev = mem_dev () in
  let li = LI.create ~kappa:2 ~beta1:4 dev in
  for s = 1 to 9 do
    ignore (LI.add_batch li (Array.make 10 s));
    if s mod 3 = 0 then ignore (LI.expire li ~keep_steps:4)
  done;
  Alcotest.(check (list string)) "invariants" [] (LI.check_invariants li);
  (* life continues: more batches, merges still fire *)
  for s = 10 to 15 do
    ignore (LI.add_batch li (Array.make 10 s))
  done;
  Alcotest.(check (list string)) "invariants after growth" [] (LI.check_invariants li);
  Alcotest.(check int) "steps keep counting" 15 (LI.time_steps li)

(* --- Quarantine ------------------------------------------------------- *)

let test_quarantine_threshold_and_reset () =
  let dev = mem_dev () in
  let li = LI.create ~kappa:4 ~beta1:6 dev in
  for s = 1 to 3 do
    ignore (LI.add_batch li (Array.init 100 (fun i -> (s * 1000) + i)))
  done;
  let p = List.hd (LI.partitions li) in
  let e0 = LI.epoch li in
  Alcotest.(check bool) "first failure below threshold" false
    (LI.note_probe_failure li p ~threshold:3);
  Alcotest.(check bool) "second failure below threshold" false
    (LI.note_probe_failure li p ~threshold:3);
  LI.note_probe_success li p;
  (* the success reset the streak: two more failures still don't trip *)
  Alcotest.(check bool) "streak reset" false (LI.note_probe_failure li p ~threshold:3);
  Alcotest.(check bool) "still below" false (LI.note_probe_failure li p ~threshold:3);
  Alcotest.(check bool) "still active" false (LI.is_quarantined li p);
  Alcotest.(check int) "epoch untouched below threshold" e0 (LI.epoch li);
  Alcotest.(check bool) "third consecutive failure quarantines" true
    (LI.note_probe_failure li p ~threshold:3);
  Alcotest.(check bool) "quarantined" true (LI.is_quarantined li p);
  Alcotest.(check bool) "epoch bumped" true (LI.epoch li > e0);
  Alcotest.(check int) "quarantined count" 1 (LI.quarantined_count li);
  Alcotest.(check int) "widening equals the partition's elements" (P.size p)
    (LI.quarantined_elements li);
  Alcotest.(check int) "active set excludes it"
    (LI.partition_count li - 1)
    (List.length (LI.active_partitions li));
  Alcotest.(check bool) "coverage still sees it" true
    (List.exists (fun q -> q == p) (LI.partitions li));
  Alcotest.(check (list string)) "invariants tolerate quarantine" [] (LI.check_invariants li)

let test_quarantine_reinstate_roundtrip () =
  let dev = mem_dev () in
  let li = LI.create ~kappa:4 ~beta1:6 dev in
  for s = 1 to 3 do
    ignore (LI.add_batch li (Array.init 120 (fun i -> (s * 1000) + i)))
  done;
  let p = List.hd (LI.partitions li) in
  LI.quarantine_partition li p;
  LI.quarantine_partition li p;
  Alcotest.(check int) "double quarantine is a no-op" 1 (LI.quarantined_count li);
  let e1 = LI.epoch li in
  (match LI.reinstate li p with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "reinstate on a healthy device failed: %s" msg);
  Alcotest.(check bool) "back in service" false (LI.is_quarantined li p);
  Alcotest.(check int) "no widening left" 0 (LI.quarantined_elements li);
  Alcotest.(check bool) "epoch bumped by reinstate" true (LI.epoch li > e1);
  Alcotest.(check int) "active set whole again" (LI.partition_count li)
    (List.length (LI.active_partitions li));
  Alcotest.(check (list string)) "invariants clean" [] (LI.check_invariants li)

let test_quarantine_defers_merges () =
  let dev = mem_dev () in
  let li = LI.create ~kappa:2 ~beta1:4 dev in
  ignore (LI.add_batch li [| 1; 2; 3 |]);
  let p = List.hd (LI.partitions li) in
  LI.quarantine_partition li p;
  (* level 0 would collapse at the third batch (Figure 2, kappa = 2);
     with a quarantined member the merge is deferred, the level
     temporarily exceeds kappa, and the invariant checker tolerates
     exactly that. *)
  ignore (LI.add_batch li [| 4; 5; 6 |]);
  ignore (LI.add_batch li [| 7; 8; 9 |]);
  Alcotest.(check (list string)) "deferral tolerated" [] (LI.check_invariants li);
  let before = LI.partition_count li in
  Alcotest.(check bool) "level over kappa while deferred" true (before > 2);
  (match LI.reinstate li p with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "reinstate failed: %s" msg);
  Alcotest.(check bool) "deferred merge ran" true (LI.partition_count li < before);
  Alcotest.(check (list string)) "invariants after the deferred merge" []
    (LI.check_invariants li);
  Alcotest.(check int) "multiset preserved" 9
    (List.fold_left (fun acc q -> acc + P.size q) 0 (LI.partitions li))

let test_quarantine_describe_restore () =
  let dev = mem_dev () in
  let li = LI.create ~kappa:4 ~beta1:6 dev in
  for s = 1 to 3 do
    ignore (LI.add_batch li (Array.init 90 (fun i -> (s * 1000) + i)))
  done;
  let p = List.hd (LI.partitions li) in
  LI.quarantine_partition li p;
  let descs = LI.describe li in
  Alcotest.(check int) "one descriptor flagged" 1
    (List.length (List.filter (fun d -> d.LI.quarantined) descs));
  let stats = Hsq_storage.Block_device.stats dev in
  let before = (Hsq_storage.Io_stats.snapshot stats).Hsq_storage.Io_stats.reads in
  let li2 = LI.restore ~kappa:4 ~beta1:6 dev descs in
  Alcotest.(check int) "quarantine survives restore" 1 (LI.quarantined_count li2);
  Alcotest.(check int) "same widening after restore" (LI.quarantined_elements li)
    (LI.quarantined_elements li2);
  let flagged_reads =
    (Hsq_storage.Io_stats.snapshot stats).Hsq_storage.Io_stats.reads - before
  in
  (* the flagged partition's (possibly bad) blocks were never read: the
     same restore with the flag cleared pays strictly more I/O for its
     summary re-read *)
  let before2 = (Hsq_storage.Io_stats.snapshot stats).Hsq_storage.Io_stats.reads in
  ignore (LI.restore ~kappa:4 ~beta1:6 dev
            (List.map (fun d -> { d with LI.quarantined = false }) descs));
  let unflagged_reads =
    (Hsq_storage.Io_stats.snapshot stats).Hsq_storage.Io_stats.reads - before2
  in
  Alcotest.(check bool)
    (Printf.sprintf "restore skipped the quarantined blocks (%d < %d)" flagged_reads
       unflagged_reads)
    true (flagged_reads < unflagged_reads);
  (* on this healthy device the restored partition re-verifies clean *)
  (match LI.reinstate li2 (List.hd (LI.quarantined li2)) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "reinstate after restore failed: %s" msg);
  Alcotest.(check int) "clean after reinstate" 0 (LI.quarantined_count li2);
  Alcotest.(check (list string)) "restored invariants" [] (LI.check_invariants li2)

let () =
  Alcotest.run "hist"
    [
      ( "partition_summary",
        [
          Alcotest.test_case "figure 3 example" `Quick test_summary_figure3_example;
          Alcotest.test_case "exact indices" `Quick test_summary_entries_have_exact_indices;
          Alcotest.test_case "spacing" `Quick test_summary_spacing;
          Alcotest.test_case "tiny partitions" `Quick test_summary_tiny_partition;
          Alcotest.test_case "rank bounds bracket" `Quick test_summary_rank_bounds_bracket;
          Alcotest.test_case "builder completeness" `Quick test_summary_builder_requires_all;
          QCheck_alcotest.to_alcotest prop_rank_bounds;
        ] );
      ( "level_index",
        [
          Alcotest.test_case "figure 2 evolution" `Quick test_figure2_evolution;
          Alcotest.test_case "invariants across kappas" `Quick test_invariants_across_kappas;
          Alcotest.test_case "multiset preserved" `Quick test_multiset_preserved;
          Alcotest.test_case "rank exact" `Quick test_rank_exact;
          Alcotest.test_case "levels logarithmic" `Quick test_level_count_logarithmic;
          Alcotest.test_case "merge accounting" `Quick test_update_report_merge_accounting;
          Alcotest.test_case "load io proportional" `Quick test_load_io_proportional_to_batch;
          Alcotest.test_case "empty batch rejected" `Quick test_empty_batch_rejected;
          QCheck_alcotest.to_alcotest prop_invariants_random_schedules;
          QCheck_alcotest.to_alcotest prop_rank_matches_oracle;
        ] );
      ( "windows",
        [
          Alcotest.test_case "window sizes (kappa=3)" `Quick test_window_sizes_kappa3;
          Alcotest.test_case "window partitions" `Quick test_window_partitions;
        ] );
      ( "memory",
        [ Alcotest.test_case "memory accounting" `Quick test_memory_words_tracks_summaries ] );
      ( "lemma 6",
        [ Alcotest.test_case "amortized merge io" `Quick test_lemma6_amortized_merge_io ] );
      ( "retention",
        [
          Alcotest.test_case "expire drops old partitions" `Quick test_expire_drops_old_partitions;
          Alcotest.test_case "expire then continue" `Quick test_expire_then_continue;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "threshold and reset" `Quick test_quarantine_threshold_and_reset;
          Alcotest.test_case "reinstate roundtrip" `Quick test_quarantine_reinstate_roundtrip;
          Alcotest.test_case "defers merges" `Quick test_quarantine_defers_merges;
          Alcotest.test_case "describe/restore" `Quick test_quarantine_describe_restore;
        ] );
    ]
