(* Tests for the stream summary SS (Algorithm 4 / Lemma 1): entry i's
   true rank must lie in [i*eps2*m, (i+1)*eps2*m], SS[0] is the exact
   minimum, and the rank lower/upper/estimate helpers bracket truth. *)

module SS = Hsq.Stream_summary

let gk_for ~epsilon data =
  (* The engine builds GK at eps2/2; mirror that here. *)
  let gk = Hsq_sketch.Gk.create ~epsilon:(epsilon /. 2.0) in
  Array.iter (Hsq_sketch.Gk.insert gk) data;
  gk

let test_lemma1_interval () =
  let rng = Hsq_util.Xoshiro.create 51 in
  let m = 30_000 in
  let data = Array.init m (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000) in
  let eps2 = 0.02 in
  let ss = SS.extract (Hsq.Stream_sketch.Gk (gk_for ~epsilon:eps2 data)) in
  Alcotest.(check (float 1e-9)) "eps2 recovered" eps2 (SS.eps2 ss);
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let spacing = eps2 *. float_of_int m in
  let ivals = SS.intervals ss in
  Array.iteri
    (fun i v ->
      (* The entry's true rank interval must intersect its stored
         guarantee, and the guarantee must be Lemma-1 narrow. *)
      let hi_rank = float_of_int (Hsq_util.Sorted.rank sorted v) in
      let lo_rank = float_of_int (Hsq_util.Sorted.rank_strict sorted v + 1) in
      let rlo, rhi = ivals.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "SS[%d]=%d rank [%.0f,%.0f] vs stored [%.0f,%.0f]" i v lo_rank hi_rank rlo
           rhi)
        true
        (hi_rank >= rlo && lo_rank <= rhi);
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "SS[%d] window %.1f <= eps2*m+2" i (rhi -. rlo))
          true
          (rhi -. rlo <= spacing +. 2.0))
    (SS.values ss)

let test_ss0_is_min () =
  let data = [| 42; 7; 99; 13; 7; 1000 |] in
  let ss = SS.extract (Hsq.Stream_sketch.Gk (gk_for ~epsilon:0.25 data)) in
  Alcotest.(check int) "SS[0] = min" 7 (SS.values ss).(0)

let test_size_is_beta2 () =
  let eps2 = 0.125 in
  let data = Array.init 10_000 (fun i -> i) in
  let ss = SS.extract (Hsq.Stream_sketch.Gk (gk_for ~epsilon:eps2 data)) in
  Alcotest.(check int) "beta2 = ceil(1/eps2)+1" 9 (SS.size ss);
  Alcotest.(check int) "beta2 helper" 9 (SS.beta2 ~eps2)

let test_empty_stream () =
  let ss = SS.extract (Hsq.Stream_sketch.Gk (Hsq_sketch.Gk.create ~epsilon:0.1)) in
  Alcotest.(check int) "no values" 0 (SS.size ss);
  Alcotest.(check int) "m = 0" 0 (SS.stream_size ss);
  Alcotest.(check (float 0.0)) "lower" 0.0 (SS.rank_lower ss 5);
  Alcotest.(check (float 0.0)) "upper" 0.0 (SS.rank_upper ss 5);
  Alcotest.(check (float 0.0)) "estimate" 0.0 (SS.rank_estimate ss 5)

let test_bounds_bracket_truth () =
  let rng = Hsq_util.Xoshiro.create 52 in
  let m = 20_000 in
  let data = Array.init m (fun _ -> Hsq_util.Xoshiro.int rng 100_000) in
  let ss = SS.extract (Hsq.Stream_sketch.Gk (gk_for ~epsilon:0.05 data)) in
  let sorted = Array.copy data in
  Array.sort compare sorted;
  List.iter
    (fun v ->
      let truth = float_of_int (Hsq_util.Sorted.rank sorted v) in
      let lo = SS.rank_lower ss v and hi = SS.rank_upper ss v in
      Alcotest.(check bool)
        (Printf.sprintf "rank(%d)=%.0f in [%.1f, %.1f]" v truth lo hi)
        true
        (lo <= truth && truth <= hi);
      (* estimate within eps2*m + spacing of truth *)
      let est = SS.rank_estimate ss v in
      Alcotest.(check bool) "estimate close" true
        (abs_float (est -. truth) <= 2.0 *. 0.05 *. float_of_int m))
    [ -1; 0; 50_000; 99_999; 100_001 ]

let test_below_min_is_zero () =
  let data = Array.init 1000 (fun i -> i + 100) in
  let ss = SS.extract (Hsq.Stream_sketch.Gk (gk_for ~epsilon:0.1 data)) in
  Alcotest.(check (float 0.0)) "below min lower" 0.0 (SS.rank_lower ss 50);
  Alcotest.(check (float 0.0)) "below min upper" 0.0 (SS.rank_upper ss 50);
  Alcotest.(check int) "count_le 0" 0 (SS.count_le ss 50)

let prop_bounds_bracket =
  QCheck.Test.make ~name:"SS rank bounds bracket truth on random streams" ~count:60
    QCheck.(pair (list_of_size Gen.(1 -- 500) (int_bound 2000)) (int_bound 2500))
    (fun (l, probe) ->
      let data = Array.of_list l in
      let ss = SS.extract (Hsq.Stream_sketch.Gk (gk_for ~epsilon:0.1 data)) in
      let sorted = Array.of_list (List.sort compare l) in
      let truth = float_of_int (Hsq_util.Sorted.rank sorted probe) in
      SS.rank_lower ss probe <= truth && truth <= SS.rank_upper ss probe)

let prop_values_sorted =
  QCheck.Test.make ~name:"SS values are non-decreasing" ~count:60
    QCheck.(list_of_size Gen.(1 -- 500) (int_bound 10_000))
    (fun l ->
      let ss = SS.extract (Hsq.Stream_sketch.Gk (gk_for ~epsilon:0.08 (Array.of_list l))) in
      Hsq_util.Sorted.is_sorted (SS.values ss))

let () =
  Alcotest.run "stream_summary"
    [
      ( "lemma 1",
        [
          Alcotest.test_case "rank intervals" `Quick test_lemma1_interval;
          Alcotest.test_case "SS[0] exact min" `Quick test_ss0_is_min;
          Alcotest.test_case "beta2 sizing" `Quick test_size_is_beta2;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "bracket truth" `Quick test_bounds_bracket_truth;
          Alcotest.test_case "below min" `Quick test_below_min_is_zero;
          Alcotest.test_case "empty stream" `Quick test_empty_stream;
          QCheck_alcotest.to_alcotest prop_bounds_bracket;
          QCheck_alcotest.to_alcotest prop_values_sorted;
        ] );
    ]
