(* The serve daemon under test: protocol units, a live in-process
   server, overload floods, and two chaos scenarios — device faults
   injected under concurrent client traffic, and kill -9 / restart of
   the real binary mid-ingest (zero acknowledged-observation loss).

   The oracle strategy mirrors test_chaos: every answered query must
   sit within its self-reported rank-error bound of an exact oracle.
   Quiesced phases check that bound exactly; the kill/restart scenario
   exploits that observes are sent in increasing order (1, 2, 3, ...),
   so whatever WAL prefix survives is exactly {1..n} and the oracle
   stays exact over the recovered store.

   HSQ_SERVE_SOAK_SECS=N adds a soak suite that loops the chaos
   scenarios under load for N seconds (the nightly job sets it). *)

module E = Hsq.Engine
module BD = Hsq_storage.Block_device
module Server = Hsq_serve.Server
module Client = Hsq_serve.Client
module Json = Hsq_serve.Json
module Protocol = Hsq_serve.Protocol

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_temp_dir f =
  let dir = Filename.temp_file "hsq_serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      try rm dir with Sys_error _ -> ())
    (fun () -> f dir)

(* --- Json ------------------------------------------------------------- *)

let roundtrip s = Result.map Json.to_string (Json.of_string s)

let test_json_roundtrip () =
  let check input expect =
    Alcotest.(check (result string string)) input (Ok expect) (roundtrip input)
  in
  check {|{"a":1,"b":[true,null,-2.5],"c":"x"}|} {|{"a":1,"b":[true,null,-2.5],"c":"x"}|};
  check {| [ 1 , 2 ] |} {|[1,2]|};
  check {|"tab\tnl\nquote\""|} {|"tab\tnl\nquote\""|};
  check {|"Aé"|} "\"A\xc3\xa9\"";
  (* surrogate pair -> 4-byte UTF-8 *)
  check {|"😀"|} "\"\xf0\x9f\x98\x80\"";
  check {|1e3|} {|1000|}

let test_json_errors () =
  let bad input =
    match Json.of_string input with
    | Ok j -> Alcotest.failf "parsed %S as %s" input (Json.to_string j)
    | Error _ -> ()
  in
  bad "{";
  bad {|{"a":}|};
  bad {|"unterminated|};
  bad "nul";
  bad {|{"a":1} trailing|};
  bad "\"ctrl\x01char\""

(* --- Protocol --------------------------------------------------------- *)

let parse_req s =
  match Json.of_string s with
  | Error e -> Error ("json: " ^ e)
  | Ok j -> Protocol.parse j

let test_protocol_parse () =
  (match parse_req {|{"op":"quick","rank":7}|} with
  | Ok (Protocol.Quick { target = Protocol.Rank 7; window = None }) -> ()
  | other -> Alcotest.failf "quick parse: %s" (match other with Error e -> e | Ok _ -> "wrong shape"));
  (match parse_req {|{"op":"accurate","phi":0.5,"window":4,"deadline_ms":50}|} with
  | Ok
      (Protocol.Accurate
        { target = Protocol.Phi 0.5; window = Some 4; deadline_ms = Some 50.0 }) ->
    ()
  | _ -> Alcotest.fail "accurate parse");
  (match parse_req {|{"op":"observe","value":3}|} with
  | Ok (Protocol.Observe [| 3 |]) -> ()
  | _ -> Alcotest.fail "observe single");
  (match parse_req {|{"op":"quick","phi":1.5}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "phi 1.5 must be rejected");
  (match parse_req {|{"op":"frobnicate"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op must be rejected")

(* --- in-process server helpers ---------------------------------------- *)

(* Engine preloaded with [steps] archived batches plus a live stream
   tail, all tracked in an exact oracle. *)
let preloaded_engine ?(config = Hsq.Config.make (Hsq.Config.Epsilon 0.02)) ~seed ~steps
    ~per_step ~stream () =
  let rng = Hsq_util.Xoshiro.create (0xCAFE + seed) in
  let eng = E.create config in
  let oracle = Hsq_workload.Oracle.create () in
  for _ = 1 to steps do
    let b = Array.init per_step (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000) in
    Hsq_workload.Oracle.add_batch oracle b;
    ignore (E.ingest_batch eng b)
  done;
  for _ = 1 to stream do
    let v = Hsq_util.Xoshiro.int rng 1_000_000 in
    E.observe eng v;
    Hsq_workload.Oracle.add oracle v
  done;
  (eng, oracle)

let with_server ?(mutate_config = Fun.id) eng f =
  with_temp_dir (fun dir ->
      let listen = Server.Unix_sock (Filename.concat dir "hsq.sock") in
      let srv = Server.create (mutate_config (Server.default_config listen)) eng in
      Server.start srv;
      Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv listen))

let check_bounded ~what oracle resp =
  if not (Client.is_ok resp) then
    Alcotest.failf "%s: unexpected error %s" what (Json.to_string resp);
  let rank =
    match Json.get_int resp "rank" with
    | Some r -> r
    | None -> Alcotest.failf "%s: no rank in %s" what (Json.to_string resp)
  in
  let v = Client.value_of resp in
  let bound = Option.value ~default:0.0 (Client.bound_of resp) in
  let err = Hsq_workload.Oracle.rank_error oracle ~rank ~value:v in
  if float_of_int err > bound then
    Alcotest.failf "%s: rank %d err %d > reported bound %.1f (%s)" what rank err bound
      (Json.to_string resp)

let test_basics () =
  let eng, oracle = preloaded_engine ~seed:1 ~steps:4 ~per_step:2_000 ~stream:500 () in
  with_server eng (fun srv listen ->
      let c = Client.connect listen in
      Client.ping c;
      let stats = Client.stats c in
      Alcotest.(check (option int)) "stats n" (Some 8_500) (Json.get_int stats "n");
      let n = 8_500 in
      (* quiesced: every quick and accurate answer within its bound *)
      List.iter
        (fun phi ->
          let rank = max 1 (int_of_float (ceil (phi *. float_of_int n))) in
          check_bounded ~what:"quick" oracle (Client.quick c (`Rank rank));
          check_bounded ~what:"accurate" oracle (Client.accurate c (`Rank rank)))
        [ 0.05; 0.5; 0.95 ];
      (* degradation report comes through the wire *)
      let acc = Client.accurate c (`Phi 0.5) in
      Alcotest.(check (option string)) "undegraded" (Some "none") (Json.get_str acc "degradation");
      (* windowed: an answerable window works, a misaligned one reports
         the alignable sizes *)
      let windows =
        match Json.member stats "windows" with
        | Some (Json.List l) -> List.filter_map Json.as_int l
        | _ -> []
      in
      Alcotest.(check bool) "some window answerable" true (windows <> []);
      let w = List.hd windows in
      let wr = Client.quick ~window:w c (`Phi 0.5) in
      Alcotest.(check bool) ("window " ^ string_of_int w) true (Client.is_ok wr);
      let bad = Client.quick ~window:9_999 c (`Phi 0.5) in
      Alcotest.(check (option string))
        "misaligned window error" (Some "window_not_aligned") (Client.error_kind bad);
      (match Json.member bad "windows" with
      | Some (Json.List (_ :: _)) -> ()
      | _ -> Alcotest.fail "misaligned window response must list alignable sizes");
      (* ingest through the wire is acknowledged and queryable *)
      let applied = Client.observe c (Array.init 100 (fun i -> i * 3)) in
      Alcotest.(check int) "observe applied" 100 applied;
      Array.iter (fun v -> Hsq_workload.Oracle.add oracle v) (Array.init 100 (fun i -> i * 3));
      Client.end_step c;
      check_bounded ~what:"post-ingest accurate" oracle (Client.accurate c (`Phi 0.5));
      (* a garbage line is answered with a parse error and the
         connection keeps working *)
      let garbage = Client.request c (Json.Str "not a request") in
      Alcotest.(check (option string)) "bad shape" (Some "bad_request") (Client.error_kind garbage);
      Client.ping c;
      (* metrics verb, both formats *)
      let m = Client.metrics c in
      (match Json.member m "metrics" with
      | Some reg ->
        Alcotest.(check bool)
          "serve counters exported" true
          (Json.get_int reg "hsq_serve_requests_ok_total" <> None);
        Alcotest.(check bool)
          "process gauges exported" true
          (Json.member reg "hsq_uptime_seconds" <> None)
      | None -> Alcotest.fail "metrics response has no registry");
      let prom =
        Client.request c (Json.Obj [ ("op", Json.Str "metrics"); ("format", Json.Str "prometheus") ])
      in
      (match Json.get_str prom "body" with
      | Some body ->
        Alcotest.(check bool)
          "prometheus body" true
          (contains body "hsq_serve_queue_depth")
      | None -> Alcotest.fail "prometheus metrics response has no body");
      (* health verb agrees with the healthy engine *)
      Alcotest.(check (option bool)) "healthy" (Some true) (Json.get_bool (Client.health c) "healthy");
      (* drain: acknowledged, then the daemon exits and the engine
         closes; new connections are refused *)
      Client.drain c;
      Server.wait srv;
      Alcotest.(check bool) "engine closed after drain" true (E.is_closed eng);
      (match Client.connect ~retries:2 ~retry_delay_s:0.01 listen with
      | c2 ->
        Client.close c2;
        Alcotest.fail "connect after drain must fail"
      | exception _ -> ());
      Client.close c)

(* A client that connects and sends nothing is cut by the read timeout;
   the daemon keeps serving others. *)
let test_slow_client () =
  let eng, _ = preloaded_engine ~seed:2 ~steps:2 ~per_step:500 ~stream:100 () in
  with_server
    ~mutate_config:(fun c -> { c with Server.read_timeout_s = 0.2 })
    eng
    (fun _srv listen ->
      let path = match listen with Server.Unix_sock p -> p | _ -> assert false in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      (* wait for the cut: the server closes its side, so read sees EOF *)
      let buf = Bytes.create 64 in
      (match Unix.select [ fd ] [] [] 5.0 with
      | [], _, _ -> Alcotest.fail "stalled connection was not cut within 5s"
      | _ ->
        let n = Unix.read fd buf 0 64 in
        Alcotest.(check int) "EOF on the stalled connection" 0 n);
      Unix.close fd;
      Alcotest.(check bool)
        "timeout surfaced in metrics" true
        (match Hsq_obs.Metrics.counter_value (E.metrics eng) "hsq_serve_conn_timeouts_total" with
        | Some n -> n >= 1
        | None -> false);
      (* and the daemon still serves *)
      let c = Client.connect listen in
      Client.ping c;
      Client.close c)

(* A request that spends its whole class budget waiting in the queue is
   answered `timeout`, not silently executed late. *)
let test_queue_deadline () =
  let eng, _ = preloaded_engine ~seed:3 ~steps:2 ~per_step:500 ~stream:100 () in
  with_server
    ~mutate_config:(fun c ->
      { c with Server.budgets = { c.Server.budgets with Server.quick_ms = 100.0 } })
    eng
    (fun srv listen ->
      let blocker = Thread.create (fun () -> Server.submit_fn srv (fun _ -> Thread.delay 0.5)) () in
      Thread.delay 0.1 (* let the job occupy the engine thread *);
      let c = Client.connect listen in
      let r = Client.quick c (`Phi 0.5) in
      Alcotest.(check (option string)) "aged out in queue" (Some "timeout") (Client.error_kind r);
      Thread.join blocker;
      (* with the engine idle again the same request succeeds *)
      Alcotest.(check bool) "after the stall" true (Client.is_ok (Client.quick c (`Phi 0.5)));
      Client.close c)

(* Flood a tiny admission queue with 2x-capacity concurrent requests:
   every request is answered, the excess is shed explicitly with a
   positive retry-after hint, and the queue never grows past its cap. *)
let test_flood () =
  let eng, _ = preloaded_engine ~seed:4 ~steps:2 ~per_step:1_000 ~stream:200 () in
  let capacity = 4 in
  with_server
    ~mutate_config:(fun c ->
      {
        c with
        Server.queue_depth = capacity;
        budgets = { c.Server.budgets with Server.quick_ms = 10_000.0 };
      })
    eng
    (fun srv listen ->
      let blocker = Thread.create (fun () -> Server.submit_fn srv (fun _ -> Thread.delay 1.5)) () in
      Thread.delay 0.1;
      let nreq = 2 * capacity in
      let responses = Array.make nreq None in
      let threads =
        Array.init nreq (fun i ->
            Thread.create
              (fun () ->
                let c = Client.connect listen in
                responses.(i) <- Some (Client.quick c (`Phi 0.5));
                Client.close c)
              ())
      in
      Array.iter Thread.join threads;
      Thread.join blocker;
      let ok = ref 0 and shed = ref 0 in
      Array.iteri
        (fun i r ->
          match r with
          | None -> Alcotest.failf "request %d never answered" i
          | Some r ->
            if Client.is_ok r then incr ok
            else begin
              Alcotest.(check (option string))
                "sheds are explicit overloads" (Some "overloaded") (Client.error_kind r);
              (match Client.retry_after_ms r with
              | Some ms when ms > 0.0 -> ()
              | _ -> Alcotest.failf "shed without a positive retry-after: %s" (Json.to_string r));
              incr shed
            end)
        responses;
      Alcotest.(check int) "all answered" nreq (!ok + !shed);
      Alcotest.(check bool) "admitted up to capacity" true (!ok >= capacity);
      Alcotest.(check bool) "the excess was shed" true (!shed >= 1);
      let reg = E.metrics eng in
      (match Hsq_obs.Metrics.gauge_value reg "hsq_serve_queue_peak" with
      | Some peak -> Alcotest.(check bool) "peak <= capacity" true (peak <= float_of_int capacity)
      | None -> Alcotest.fail "no queue peak gauge");
      match Hsq_obs.Metrics.counter_value reg "hsq_serve_requests_shed_total" with
      | Some n -> Alcotest.(check int) "shed counter agrees" !shed n
      | None -> Alcotest.fail "no shed counter")

(* Regression: a client connecting while the drain is in progress must
   be told [shutting_down] and disconnected — never left hanging in the
   accept backlog, never reset without an answer.  (The listener used
   to stay silent between the drain request and the final close,
   stranding mid-drain connectors.) *)
let test_drain_race () =
  let eng, _ = preloaded_engine ~seed:6 ~steps:2 ~per_step:500 ~stream:100 () in
  with_server eng (fun srv listen ->
      (* occupy the engine thread so the drain has admitted work to
         wait for — that's the window the race lives in *)
      let blocker =
        Thread.create (fun () -> Server.submit_fn srv (fun _ -> Thread.delay 1.0)) ()
      in
      Thread.delay 0.1;
      Server.request_stop srv;
      Thread.delay 0.1 (* the drain is now blocked on the job above *);
      let path = match listen with Server.Unix_sock p -> p | _ -> assert false in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.7;
      let buf = Bytes.create 1024 in
      (match Unix.read fd buf 0 1024 with
      | 0 -> Alcotest.fail "mid-drain connection closed without an answer"
      | n -> (
        let line = String.trim (Bytes.sub_string buf 0 n) in
        match Json.of_string line with
        | Error e -> Alcotest.failf "mid-drain refusal is not JSON (%s): %s" e line
        | Ok r ->
          Alcotest.(check (option string))
            "mid-drain connect refused cleanly" (Some "shutting_down") (Client.error_kind r))
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Alcotest.fail "mid-drain connection hung with no refusal");
      Unix.close fd;
      Thread.join blocker;
      Server.wait srv;
      Alcotest.(check bool) "engine closed after drain" true (E.is_closed eng);
      (* after the drain completes the socket is gone: connects fail
         outright rather than being refused politely *)
      match Client.connect ~retries:2 ~retry_delay_s:0.01 listen with
      | c2 ->
        Client.close c2;
        Alcotest.fail "connect after full drain must fail"
      | exception _ -> ())

(* --- sharded backend over the wire -------------------------------------- *)

module G = Hsq_shard.Shard_group

let test_sharded_server () =
  let config =
    Hsq.Config.make ~kappa:3 ~block_size:32 ~shards:3 (Hsq.Config.Epsilon 0.05)
  in
  let g = G.create config in
  let oracle = Hsq_workload.Oracle.create () in
  with_temp_dir (fun dir ->
      let listen = Server.Unix_sock (Filename.concat dir "hsq.sock") in
      let srv = Server.create_group (Server.default_config listen) g in
      Server.start srv;
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () ->
          let c = Client.connect listen in
          let rng = Hsq_util.Xoshiro.create 0x51AB in
          for _ = 1 to 3 do
            let batch = Array.init 400 (fun _ -> Hsq_util.Xoshiro.int rng 100_000) in
            let applied = Client.observe c batch in
            Alcotest.(check int) "all applied" (Array.length batch) applied;
            Array.iter (Hsq_workload.Oracle.add oracle) batch;
            Client.end_step c
          done;
          let stats = Client.stats c in
          Alcotest.(check (option int)) "stats: shard count" (Some 3) (Json.get_int stats "shards");
          Alcotest.(check (option int)) "stats: n" (Some 1_200) (Json.get_int stats "n");
          check_bounded ~what:"group quick" oracle (Client.quick c (`Phi 0.5));
          check_bounded ~what:"group accurate" oracle (Client.accurate c (`Phi 0.9));
          (* windowed queries are a single-engine feature *)
          Alcotest.(check (option string))
            "windowed query refused" (Some "bad_request")
            (Client.error_kind (Client.quick ~window:1 c (`Phi 0.5)));
          (* kill a shard on the engine thread, under the live server:
             fused answers keep flowing, degraded and honest *)
          Server.submit_group_fn srv (fun g -> G.mark_down g 1 ~reason:"chaos");
          let r = Client.quick c (`Phi 0.5) in
          Alcotest.(check bool) "degraded quick still answers" true (Client.is_ok r);
          Alcotest.(check (option string))
            "degradation on the wire" (Some "shard_down") (Json.get_str r "degradation");
          let acc = Client.accurate c (`Phi 0.5) in
          Alcotest.(check bool) "degraded accurate still answers" true (Client.is_ok acc);
          let h = Client.health c in
          Alcotest.(check (option bool)) "rollup unhealthy" (Some false)
            (Json.get_bool h "healthy");
          (* a shard-labelled metrics dump *)
          (match
             Client.request c
               (Json.Obj [ ("op", Json.Str "metrics"); ("format", Json.Str "prometheus") ])
             |> fun m -> Json.get_str m "body"
           with
          | Some body ->
            Alcotest.(check bool) "per-shard labels" true (contains body "shard=\"0\"")
          | None -> Alcotest.fail "no prometheus body from the sharded server");
          Client.close c))

(* Replicated smoke (the CI PR gate): a K=2, R=2 durable group behind
   the live server loses one replica mid-traffic.  Answers must stay
   fully UNDEGRADED — the sibling serves at full precision — while the
   health rollup distinguishes the two tiers: full_precision stays
   true (exit 0 contract) and healthy flips false (warning tier).
   Rejoin drains the hints and restores the warning-free state. *)
let test_replicated_server () =
  let oracle = Hsq_workload.Oracle.create () in
  with_temp_dir (fun dir ->
      let config =
        Hsq.Config.make ~kappa:3 ~block_size:32 ~shards:2 ~replicas:2
          ~wal_dir:(Filename.concat dir "store") (Hsq.Config.Epsilon 0.05)
      in
      let g, recoveries = G.open_or_recover config in
      List.iter
        (fun { G.shard; replica; outcome } ->
          if Result.is_error outcome then
            Alcotest.failf "shard %d replica %d dirty on fresh open" shard replica)
        recoveries;
      let listen = Server.Unix_sock (Filename.concat dir "hsq.sock") in
      let srv = Server.create_group (Server.default_config listen) g in
      Server.start srv;
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () ->
          let c = Client.connect listen in
          let rng = Hsq_util.Xoshiro.create 0x7E11 in
          for _ = 1 to 3 do
            let batch = Array.init 400 (fun _ -> Hsq_util.Xoshiro.int rng 100_000) in
            let applied = Client.observe c batch in
            Alcotest.(check int) "all applied" (Array.length batch) applied;
            Array.iter (Hsq_workload.Oracle.add oracle) batch;
            Client.end_step c
          done;
          let stats = Client.stats c in
          Alcotest.(check (option int)) "stats: shards" (Some 2) (Json.get_int stats "shards");
          Alcotest.(check (option int)) "stats: replicas" (Some 2)
            (Json.get_int stats "replicas");
          check_bounded ~what:"replicated quick" oracle (Client.quick c (`Phi 0.5));
          (* kill one replica of shard 0 under the live server *)
          Server.submit_group_fn srv (fun g ->
              G.mark_replica_down g ~shard:0 ~replica:1 ~reason:"chaos: replica killed");
          (* ingest keeps acking through the survivor (hints buffer for
             the dead replica) and answers stay fully undegraded *)
          let batch = Array.init 300 (fun _ -> Hsq_util.Xoshiro.int rng 100_000) in
          let applied = Client.observe c batch in
          Alcotest.(check int) "all applied with a replica down" (Array.length batch) applied;
          Array.iter (Hsq_workload.Oracle.add oracle) batch;
          let r = Client.quick c (`Phi 0.5) in
          Alcotest.(check bool) "failover quick answers" true (Client.is_ok r);
          Alcotest.(check (option string))
            "failover quick undegraded" (Some "none") (Json.get_str r "degradation");
          check_bounded ~what:"failover quick" oracle r;
          let acc = Client.accurate c (`Phi 0.9) in
          Alcotest.(check (option string))
            "failover accurate undegraded" (Some "none") (Json.get_str acc "degradation");
          check_bounded ~what:"failover accurate" oracle acc;
          (* two-tier health rollup on the wire *)
          let h = Client.health c in
          Alcotest.(check (option bool)) "full precision with a sibling serving" (Some true)
            (Json.get_bool h "full_precision");
          Alcotest.(check (option bool)) "but not warning-free" (Some false)
            (Json.get_bool h "healthy");
          (* replica-labelled metrics *)
          (match
             Client.request c
               (Json.Obj [ ("op", Json.Str "metrics"); ("format", Json.Str "prometheus") ])
             |> fun m -> Json.get_str m "body"
           with
          | Some body ->
            Alcotest.(check bool) "per-replica labels" true
              (contains body "shard=\"0\",replica=\"0\"")
          | None -> Alcotest.fail "no prometheus body from the replicated server");
          (* rejoin drains the hints; the rollup is warning-free again *)
          Server.submit_group_fn srv (fun g ->
              match G.rejoin_replica g ~shard:0 ~replica:1 with
              | Ok _ -> ()
              | Error msg -> Alcotest.failf "rejoin failed: %s" msg);
          let h = Client.health c in
          Alcotest.(check (option bool)) "healthy after rejoin" (Some true)
            (Json.get_bool h "healthy");
          Client.close c))

(* --- chaos: device faults under live client traffic -------------------- *)

let chaos_coin ~seed ~salt addr pct =
  let h = (addr * 2654435761) lxor (seed * 40503) lxor (salt * 8191) in
  (h land 0x3fffffff) mod 100 < pct

let run_device_chaos ~seed () =
  let config =
    Hsq.Config.make ~kappa:3 ~block_size:32 ~quarantine_after:2 (Hsq.Config.Epsilon 0.05)
  in
  let eng, oracle = preloaded_engine ~config ~seed ~steps:5 ~per_step:600 ~stream:200 () in
  with_server eng (fun srv listen ->
      let n = E.total_size eng in
      let ranks =
        List.map (fun phi -> max 1 (int_of_float (ceil (phi *. float_of_int n)))) [ 0.1; 0.5; 0.9 ]
      in
      let sweep ~what =
        (* concurrent clients; the engine itself still serializes *)
        let threads =
          List.map
            (fun rank ->
              Thread.create
                (fun () ->
                  let c = Client.connect listen in
                  for _ = 1 to 5 do
                    check_bounded ~what oracle (Client.quick c (`Rank rank));
                    check_bounded ~what oracle (Client.accurate c ~deadline_ms:2_000.0 (`Rank rank))
                  done;
                  Client.close c)
                ())
            ranks
        in
        List.iter Thread.join threads
      in
      sweep ~what:"healthy";
      (* inject persistent block faults on the engine thread — the same
         serialized path queries use, so the flip cannot race them *)
      Server.submit_fn srv (fun eng ->
          BD.set_injector (E.device eng)
            (Some
               (fun op ~attempt:_ addr ->
                 if op = BD.Read && chaos_coin ~seed ~salt:2 addr 15 then
                   if chaos_coin ~seed ~salt:3 addr 50 then Some BD.Fail
                   else Some (BD.Corrupt (addr land 7))
                 else None)));
      sweep ~what:"faulted";
      (* heal: clear the injector and repair-scrub, again serialized *)
      Server.submit_fn srv (fun eng ->
          BD.set_injector (E.device eng) None;
          let rep = Hsq.Persist.scrub ~repair:true eng in
          if rep.Hsq.Persist.still_quarantined <> 0 then
            Alcotest.failf "seed %d: %d partitions quarantined after repair scrub" seed
              rep.Hsq.Persist.still_quarantined);
      sweep ~what:"healed";
      let c = Client.connect listen in
      Alcotest.(check (option bool))
        "healthy after heal" (Some true)
        (Json.get_bool (Client.health c) "healthy");
      let final = Client.accurate c (`Phi 0.5) in
      Alcotest.(check (option string))
        "undegraded after heal" (Some "none") (Json.get_str final "degradation");
      Client.close c)

(* --- chaos: kill -9 the real daemon mid-ingest, restart, verify -------- *)

let bin () =
  match Sys.getenv_opt "HSQ_BIN" with
  | Some p -> p
  | None -> Alcotest.fail "HSQ_BIN not set (run through dune)"

let spawn_daemon ~sock ~store =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let bin = bin () in
  let pid =
    Unix.create_process bin
      [| bin; "serve"; "--socket"; sock; "--durable"; store; "--wal-sync"; "always" |]
      Unix.stdin null null
  in
  Unix.close null;
  pid

let run_kill_restart ~seed () =
  with_temp_dir (fun dir ->
      let sock = Filename.concat dir "hsq.sock" in
      let store = Filename.concat dir "store" in
      let pid = spawn_daemon ~sock ~store in
      let listen = Server.Unix_sock sock in
      (* Ingest increasing values 1,2,3,... in batches; track how many
         were acknowledged.  A worker thread keeps the load flowing
         while the main thread pulls the trigger. *)
      let acked = ref 0 and sent = ref 0 in
      let stop = Atomic.make false in
      let worker =
        Thread.create
          (fun () ->
            let c = Client.connect listen in
            (try
               let batch = 64 in
               while not (Atomic.get stop) do
                 let base = !sent in
                 let values = Array.init batch (fun i -> base + i + 1) in
                 sent := base + batch;
                 let r =
                   Client.request c
                     (Json.Obj
                        [
                          ("op", Json.Str "observe");
                          ( "values",
                            Json.List (Array.to_list (Array.map Json.int values)) );
                        ])
                 in
                 (match Json.get_int r "applied" with
                 | Some a -> acked := !acked + a
                 | None -> ());
                 if !sent mod (batch * 16) = 0 && Client.is_ok r then
                   ignore (Client.request c (Json.Obj [ ("op", Json.Str "end_step") ]))
               done
             with Client.Protocol_error _ | Unix.Unix_error _ -> ());
            Client.close c)
          ()
      in
      (* let some load through, then kill without ceremony *)
      Thread.delay (0.3 +. (0.05 *. float_of_int (seed mod 4)));
      Unix.kill pid Sys.sigkill;
      Atomic.set stop true;
      Thread.join worker;
      ignore (Unix.waitpid [] pid);
      Alcotest.(check bool) "some load was acknowledged" true (!acked > 0);
      (* restart over the same store: recovery must preserve every
         acknowledged observation (wal-sync=always) *)
      let pid2 = spawn_daemon ~sock ~store in
      let c = Client.connect ~retries:100 listen in
      let stats = Client.stats c in
      let n =
        match Json.get_int stats "n" with
        | Some n -> n
        | None -> Alcotest.fail "no n in stats"
      in
      if n < !acked then
        Alcotest.failf "seed %d: lost acknowledged observations: acked %d, recovered %d" seed
          !acked n;
      if n > !sent then
        Alcotest.failf "seed %d: recovered %d > sent %d" seed n !sent;
      (* values were 1..sent in order, so the recovered multiset is
         exactly {1..n} and the oracle is exact *)
      List.iter
        (fun phi ->
          let rank = max 1 (int_of_float (ceil (phi *. float_of_int n))) in
          let r = Client.accurate c (`Rank rank) in
          if not (Client.is_ok r) then
            Alcotest.failf "post-restart accurate failed: %s" (Json.to_string r);
          let v = Client.value_of r in
          let bound = Option.value ~default:0.0 (Client.bound_of r) in
          let err = abs (v - rank) in
          if float_of_int err > bound then
            Alcotest.failf "seed %d: post-restart rank %d got %d, err %d > bound %.1f" seed rank
              v err bound)
        [ 0.1; 0.5; 0.9 ];
      (* clean drain this time *)
      Client.drain c;
      Client.close c;
      match Unix.waitpid [] pid2 with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED code -> Alcotest.failf "drained daemon exited %d" code
      | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> Alcotest.failf "drained daemon killed by %d" s)

(* --- soak (nightly: HSQ_SERVE_SOAK_SECS) ------------------------------- *)

let soak_secs =
  match Sys.getenv_opt "HSQ_SERVE_SOAK_SECS" with
  | Some s -> ( try max 0 (int_of_string (String.trim s)) with _ -> 0)
  | None -> 0

let run_soak () =
  let deadline = Unix.gettimeofday () +. float_of_int soak_secs in
  let round = ref 0 in
  while Unix.gettimeofday () < deadline do
    incr round;
    run_device_chaos ~seed:(100 + !round) ();
    run_kill_restart ~seed:(200 + !round) ();
    Printf.printf "soak: round %d done (%.0fs left)\n%!" !round
      (Float.max 0.0 (deadline -. Unix.gettimeofday ()))
  done

let () =
  let quick_cases =
    [
      ( "wire format",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "json errors" `Quick test_json_errors;
          Alcotest.test_case "request parsing" `Quick test_protocol_parse;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "basics: query, ingest, metrics, health, drain" `Quick test_basics;
          Alcotest.test_case "stalled client is cut" `Quick test_slow_client;
          Alcotest.test_case "queue-aged request times out" `Quick test_queue_deadline;
          Alcotest.test_case "2x-capacity flood sheds explicitly" `Quick test_flood;
          Alcotest.test_case "mid-drain connect gets shutting_down" `Quick test_drain_race;
          Alcotest.test_case "sharded backend over the wire" `Quick test_sharded_server;
          Alcotest.test_case "replicated failover over the wire" `Quick test_replicated_server;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "device faults under live traffic" `Quick (run_device_chaos ~seed:11);
          Alcotest.test_case "kill -9 and restart, zero acked loss" `Quick
            (run_kill_restart ~seed:1);
        ] );
    ]
  in
  let soak_cases =
    if soak_secs > 0 then
      [ ("soak", [ Alcotest.test_case (Printf.sprintf "%ds" soak_secs) `Slow run_soak ]) ]
    else []
  in
  Alcotest.run "serve" (quick_cases @ soak_cases)
