(* Integration tests: the full system driven over every evaluation
   dataset, mixed query workloads against the exact oracle, the
   file-backed device, and fault recovery. *)

module E = Hsq.Engine

let run_dataset ~name ~seed =
  let ds = Hsq_workload.Datasets.by_name ~seed name in
  let config = Hsq.Config.make ~kappa:4 ~block_size:64 (Hsq.Config.Epsilon 0.02) in
  let eng = E.create config in
  let oracle = Hsq_workload.Oracle.create () in
  let steps = 10 and step_size = 2_000 in
  for _ = 1 to steps do
    let batch = Hsq_workload.Datasets.next_batch ds step_size in
    Hsq_workload.Oracle.add_batch oracle batch;
    ignore (E.ingest_batch eng batch)
  done;
  (* live tail of half a step *)
  let tail = Hsq_workload.Datasets.next_batch ds (step_size / 2) in
  Array.iter
    (fun v ->
      E.observe eng v;
      Hsq_workload.Oracle.add oracle v)
    tail;
  (eng, oracle)

let test_all_datasets_within_bounds () =
  List.iter
    (fun name ->
      let eng, oracle = run_dataset ~name ~seed:101 in
      let n = E.total_size eng in
      let m = E.stream_size eng in
      let bound = Hsq.Errors.accurate_rank_bound ~eps:(E.epsilon eng) ~eps2:(E.eps2 eng) ~m in
      List.iter
        (fun phi ->
          let r = int_of_float (ceil (phi *. float_of_int n)) in
          let v, report = E.accurate eng ~rank:r in
          let err = Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v in
          Alcotest.(check bool)
            (Printf.sprintf "%s phi=%.2f err=%d bound=%.0f io=%d" name phi err bound
               (Hsq_storage.Io_stats.total report.E.io))
            true
            (float_of_int err <= bound))
        [ 0.05; 0.25; 0.5; 0.75; 0.95 ];
      Alcotest.(check (list string)) (name ^ " invariants") []
        (Hsq_hist.Level_index.check_invariants (E.hist eng)))
    Hsq_workload.Datasets.names

let test_interleaved_queries_and_updates () =
  (* Queries must be valid at any point of the lifecycle, including
     immediately after a step boundary (empty stream). *)
  let ds = Hsq_workload.Datasets.uniform ~seed:102 in
  let config = Hsq.Config.make ~kappa:3 ~block_size:32 (Hsq.Config.Epsilon 0.05) in
  let eng = E.create config in
  let oracle = Hsq_workload.Oracle.create () in
  for step = 1 to 12 do
    let batch = Hsq_workload.Datasets.next_batch ds 1_000 in
    Array.iteri
      (fun i v ->
        E.observe eng v;
        Hsq_workload.Oracle.add oracle v;
        if i = 500 then begin
          (* mid-step query *)
          let n = E.total_size eng in
          let r = max 1 (n / 2) in
          let v, _ = E.accurate eng ~rank:r in
          let err = Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v in
          let m = E.stream_size eng in
          let bound = Hsq.Errors.accurate_rank_bound ~eps:(E.epsilon eng) ~eps2:(E.eps2 eng) ~m in
          if float_of_int err > bound then
            Alcotest.failf "mid-step query off at step %d: err=%d > %.1f" step err bound
        end)
      batch;
    ignore (E.end_time_step eng);
    (* boundary query with empty stream: near-exact *)
    let n = E.total_size eng in
    let r = max 1 (int_of_float (ceil (0.9 *. float_of_int n))) in
    let v, _ = E.accurate eng ~rank:r in
    let err = Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v in
    Alcotest.(check bool) (Printf.sprintf "boundary step %d err=%d" step err) true (err <= 1)
  done

let test_file_backed_device_agrees () =
  let path = Filename.temp_file "hsq_integration" ".dev" in
  let config = Hsq.Config.make ~kappa:3 ~block_size:32 (Hsq.Config.Epsilon 0.05) in
  let file_dev = Hsq_storage.Block_device.create_file ~block_size:32 ~path () in
  let eng_mem = E.create config in
  let eng_file = E.create ~device:file_dev config in
  let ds1 = Hsq_workload.Datasets.normal ~seed:103 in
  let ds2 = Hsq_workload.Datasets.normal ~seed:103 in
  for _ = 1 to 7 do
    ignore (E.ingest_batch eng_mem (Hsq_workload.Datasets.next_batch ds1 1_500));
    ignore (E.ingest_batch eng_file (Hsq_workload.Datasets.next_batch ds2 1_500))
  done;
  List.iter
    (fun phi ->
      let n = E.total_size eng_mem in
      let r = int_of_float (ceil (phi *. float_of_int n)) in
      let v_mem, _ = E.accurate eng_mem ~rank:r in
      let v_file, _ = E.accurate eng_file ~rank:r in
      Alcotest.(check int) (Printf.sprintf "phi=%.2f backends agree" phi) v_mem v_file)
    [ 0.1; 0.5; 0.9 ];
  Hsq_storage.Block_device.close file_dev;
  Sys.remove path

let test_persistent_fault_degrades_to_quick () =
  let config = Hsq.Config.make ~kappa:3 ~block_size:32 (Hsq.Config.Epsilon 0.05) in
  let eng = E.create config in
  for _ = 1 to 5 do
    ignore (E.ingest_batch eng (Array.init 1_000 (fun i -> i * 7)))
  done;
  for i = 1 to 100 do
    E.observe eng i
  done;
  let dev = E.device eng in
  (* A persistent read fault: retries are exhausted and the accurate
     path must degrade to the in-memory quick answer, flagged as such,
     instead of raising at the caller. *)
  Hsq_storage.Block_device.set_fault dev (Some (fun op _ -> op = Hsq_storage.Block_device.Read));
  let stats = Hsq_storage.Block_device.stats dev in
  Hsq_storage.Io_stats.reset stats;
  let v, report = E.accurate eng ~rank:2_000 in
  (* A device-wide persistent fault trips the circuit breaker before
     every partition can be quarantined, so the query degrades to the
     in-memory answer flagged device_open. *)
  Alcotest.(check bool) "answer flagged degraded" true (report.E.degradation = `Device_open);
  Alcotest.(check bool) "bound reported" true (report.E.rank_error_bound >= 0.0);
  Alcotest.(check int) "matches the quick path" (E.quick eng ~rank:2_000) v;
  Alcotest.(check bool) "retries were attempted first" true
    ((Hsq_storage.Io_stats.snapshot stats).Hsq_storage.Io_stats.retries > 0);
  (* Device healed (set_fault also resets the breaker): partitions the
     containment layer quarantined on the way down are re-verified and
     reinstated, and full accuracy comes back, unflagged. *)
  Hsq_storage.Block_device.set_fault dev None;
  List.iter
    (fun p ->
      match Hsq_hist.Level_index.reinstate (E.hist eng) p with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "reinstate failed on healed device: %s" msg)
    (Hsq_hist.Level_index.quarantined (E.hist eng));
  let v, report = E.accurate eng ~rank:2_000 in
  Alcotest.(check bool) "not degraded after clearing" true (report.E.degradation = `None);
  Alcotest.(check bool) "recovers after fault cleared" true (v >= 0)

let test_transient_fault_invisible_to_queries () =
  let config = Hsq.Config.make ~kappa:3 ~block_size:32 (Hsq.Config.Epsilon 0.05) in
  let eng = E.create config in
  let oracle = Hsq_workload.Oracle.create () in
  let rng = Hsq_util.Xoshiro.create 77 in
  for _ = 1 to 5 do
    let batch = Array.init 1_000 (fun _ -> Hsq_util.Xoshiro.int rng 50_000) in
    Hsq_workload.Oracle.add_batch oracle batch;
    ignore (E.ingest_batch eng batch)
  done;
  let dev = E.device eng in
  (* Every read's first attempt fails; the bounded retry absorbs it, so
     answers are identical to a healthy device and nothing degrades. *)
  Hsq_storage.Block_device.set_injector dev
    (Some
       (fun op ~attempt _ ->
         if op = Hsq_storage.Block_device.Read && attempt = 1 then
           Some Hsq_storage.Block_device.Fail
         else None));
  let stats = Hsq_storage.Block_device.stats dev in
  Hsq_storage.Io_stats.reset stats;
  let n = E.total_size eng in
  let v, report = E.accurate eng ~rank:(n / 2) in
  Alcotest.(check bool) "not degraded" true (report.E.degradation = `None);
  Alcotest.(check int) "still exact with empty stream" 0
    (Hsq_workload.Oracle.rank_error oracle ~rank:(n / 2) ~value:v);
  Alcotest.(check bool) "retries visible in stats" true
    ((Hsq_storage.Io_stats.snapshot stats).Hsq_storage.Io_stats.retries > 0)

let test_deadline_cuts_to_best_so_far () =
  let ds = Hsq_workload.Datasets.uniform ~seed:88 in
  let config = Hsq.Config.make ~kappa:3 ~block_size:32 (Hsq.Config.Epsilon 0.05) in
  let eng = E.create config in
  let oracle = Hsq_workload.Oracle.create () in
  for _ = 1 to 8 do
    let batch = Hsq_workload.Datasets.next_batch ds 1_000 in
    Hsq_workload.Oracle.add_batch oracle batch;
    ignore (E.ingest_batch eng batch)
  done;
  Array.iter
    (fun v ->
      E.observe eng v;
      Hsq_workload.Oracle.add oracle v)
    (Hsq_workload.Datasets.next_batch ds 500);
  let n = E.total_size eng in
  let rank = n / 2 in
  (* An already-expired deadline: the bisection is cut before its first
     iteration and the query returns its best-so-far answer, honestly
     flagged with a rank-error bound the oracle confirms. *)
  let v, report = E.accurate ~deadline_ms:1e-9 eng ~rank in
  Alcotest.(check bool) "flagged deadline" true (report.E.degradation = `Deadline);
  Alcotest.(check int) "cut before the first iteration" 0 report.E.iterations;
  let err = Hsq_workload.Oracle.rank_error oracle ~rank ~value:v in
  Alcotest.(check bool)
    (Printf.sprintf "bound honest under the cut: err=%d bound=%.0f" err
       report.E.rank_error_bound)
    true
    (float_of_int err <= report.E.rank_error_bound);
  (* Without a deadline the same engine still answers at full accuracy. *)
  let v2, report2 = E.accurate eng ~rank in
  Alcotest.(check bool) "undeadlined query unaffected" true
    (report2.E.degradation = `None && report2.E.iterations > 0);
  let m = E.stream_size eng in
  let bound = Hsq.Errors.accurate_rank_bound ~eps:(E.epsilon eng) ~eps2:(E.eps2 eng) ~m in
  Alcotest.(check bool) "full accuracy afterwards" true
    (float_of_int (Hsq_workload.Oracle.rank_error oracle ~rank ~value:v2) <= bound)

let test_write_fault_during_end_time_step () =
  let config = Hsq.Config.make ~kappa:3 ~block_size:32 (Hsq.Config.Epsilon 0.05) in
  let eng = E.create config in
  for _ = 1 to 2 do
    ignore (E.ingest_batch eng (Array.init 800 (fun i -> (i * 13) mod 10_000)))
  done;
  let before_total = E.total_size eng and before_steps = E.time_steps eng in
  for i = 1 to 600 do
    E.observe eng (i * 3)
  done;
  let dev = E.device eng in
  (* The level-0 run write fails before any index state is touched:
     archiving raises, the warehouse is unchanged, the batch is kept. *)
  Hsq_storage.Block_device.set_injector dev
    (Some
       (fun op ~attempt:_ _ ->
         if op = Hsq_storage.Block_device.Write then Some Hsq_storage.Block_device.Fail else None));
  Alcotest.(check bool) "write fault surfaces" true
    (try
       ignore (E.end_time_step eng);
       false
     with Hsq_storage.Block_device.Device_error _ -> true);
  Alcotest.(check int) "no partial step archived" before_total (E.hist_size eng);
  Alcotest.(check int) "batch retained in the stream" 600 (E.stream_size eng);
  Alcotest.(check int) "step count unchanged" before_steps (E.time_steps eng);
  Alcotest.(check (list string)) "invariants hold after failed write" []
    (Hsq_hist.Level_index.check_invariants (E.hist eng));
  (* Fault cleared: the retained batch archives cleanly. *)
  Hsq_storage.Block_device.set_injector dev None;
  ignore (E.end_time_step eng);
  Alcotest.(check int) "batch retained and archived" (before_total + 600) (E.total_size eng);
  Alcotest.(check int) "step count advanced" (before_steps + 1) (E.time_steps eng);
  Alcotest.(check (list string)) "invariants after recovery" []
    (Hsq_hist.Level_index.check_invariants (E.hist eng));
  let v, report = E.accurate eng ~rank:(E.total_size eng / 2) in
  Alcotest.(check bool) "query healthy after recovery" true
    (v >= 0 && report.E.degradation = `None)

let test_quick_vs_accurate_consistency () =
  (* Quick and accurate answers must be within their combined bounds of
     each other on every dataset. *)
  List.iter
    (fun name ->
      let eng, oracle = run_dataset ~name ~seed:104 in
      let n = E.total_size eng in
      let r = n / 2 in
      let va, _ = E.accurate eng ~rank:r in
      let vq = E.quick eng ~rank:r in
      let ra = Hsq_workload.Oracle.rank_of oracle va in
      let rq = Hsq_workload.Oracle.rank_of oracle vq in
      Alcotest.(check bool)
        (Printf.sprintf "%s quick/accurate ranks within 2*1.5*eps*N" name)
        true
        (float_of_int (abs (ra - rq)) <= 4.0 *. E.epsilon eng *. float_of_int n))
    Hsq_workload.Datasets.names

let test_long_run_many_steps () =
  (* 60 steps: several merge cascades deep; invariants + accuracy. *)
  let ds = Hsq_workload.Datasets.network ~seed:105 in
  let config = Hsq.Config.make ~kappa:3 ~block_size:64 ~steps_hint:60 (Hsq.Config.Epsilon 0.05) in
  let eng = E.create config in
  let oracle = Hsq_workload.Oracle.create () in
  for _ = 1 to 60 do
    let b = Hsq_workload.Datasets.next_batch ds 500 in
    Hsq_workload.Oracle.add_batch oracle b;
    ignore (E.ingest_batch eng b)
  done;
  Alcotest.(check (list string)) "invariants after 60 steps" []
    (Hsq_hist.Level_index.check_invariants (E.hist eng));
  Alcotest.(check bool) "levels stay logarithmic" true
    (Hsq_hist.Level_index.num_levels (E.hist eng) <= 5);
  let n = E.total_size eng in
  let v, _ = E.accurate eng ~rank:(n / 2) in
  Alcotest.(check int) "median exact with empty stream" 0
    (Hsq_workload.Oracle.rank_error oracle ~rank:(n / 2) ~value:v)

let () =
  Alcotest.run "integration"
    [
      ( "datasets",
        [
          Alcotest.test_case "all datasets within bounds" `Slow test_all_datasets_within_bounds;
          Alcotest.test_case "quick vs accurate consistent" `Slow test_quick_vs_accurate_consistency;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "interleaved queries/updates" `Slow test_interleaved_queries_and_updates;
          Alcotest.test_case "long run (60 steps)" `Slow test_long_run_many_steps;
        ] );
      ( "durability",
        [
          Alcotest.test_case "file-backed device agrees" `Slow test_file_backed_device_agrees;
          Alcotest.test_case "persistent fault degrades to quick" `Quick
            test_persistent_fault_degrades_to_quick;
          Alcotest.test_case "transient fault invisible to queries" `Quick
            test_transient_fault_invisible_to_queries;
          Alcotest.test_case "write fault during end_time_step" `Quick
            test_write_fault_during_end_time_step;
          Alcotest.test_case "deadline cuts to best-so-far" `Quick
            test_deadline_cuts_to_best_so_far;
        ] );
    ]
