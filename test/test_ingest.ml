(* Concurrent multi-domain ingest (DESIGN.md §15).

   The contract under test: with D lanes fed from D threads,
   concurrently with queries, checkpoints, and crash-recovery on the
   engine thread,

   - counts are EXACT at quiescence (flush_ingest drains every lane);
   - quantile answers stay inside their self-reported rank-error
     bounds against an exact oracle — the same honesty check the chaos
     harnesses use — both mid-flight and at quiescence;
   - a durable engine recovers exactly the acknowledged prefix: every
     observe_domain that returned is reproduced by replay, in any lane
     topology (recovery consolidates or grows the lane files);
   - the lane metrics (per-lane accumulators summed at export, and the
     Atomic query counters) are exact at quiescence — the regression
     test for the racy-int fix.

   HSQ_INGEST_SEEDS scales the fuzz seed count (default 6; nightly CI
   raises it). *)

module E = Hsq.Engine
module Metrics = Hsq_obs.Metrics

let seeds =
  match Sys.getenv_opt "HSQ_INGEST_SEEDS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 6)
  | None -> 6

let with_store f =
  let dir = Filename.temp_file "hsq_ingest" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* Exact rank of [v] in [sorted]: elements <= v. *)
let exact_rank sorted v =
  let lo = ref 0 and hi = ref (Array.length sorted) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if sorted.(mid) <= v then lo := mid + 1 else hi := mid
  done;
  !lo

(* The honesty check: the engine's own bound must cover the true rank
   error against the exact population. *)
let check_bounds ~msg eng sorted =
  let n = Array.length sorted in
  List.iter
    (fun phi ->
      let rank = max 1 (min n (int_of_float (ceil (phi *. float_of_int n)))) in
      let v, bound = E.quick_with_bound eng ~rank in
      let err = abs (exact_rank sorted v - rank) in
      if float_of_int err > bound +. 1e-9 then
        Alcotest.failf "%s: phi=%g rank=%d err=%d > bound=%.1f" msg phi rank err bound)
    [ 0.05; 0.25; 0.5; 0.75; 0.95 ]

(* Feed [per_lane] elements down each of [domains] lanes from
   concurrent threads.  Returns the threads plus a live count the main
   thread can poll while racing queries against the feeders. *)
let concurrent_feed eng ~domains ~per_lane ~seed ~data =
  let live = Atomic.make domains in
  let threads =
    Array.init domains (fun d ->
        Thread.create
          (fun () ->
            let rng = Random.State.make [| seed; d |] in
            for i = 0 to per_lane - 1 do
              let v = data.((d * per_lane) + i) in
              E.observe_domain eng ~domain:d v;
              (* Stagger lanes so hand-offs interleave with queries. *)
              if Random.State.int rng 97 = 0 then Thread.yield ()
            done;
            Atomic.decr live)
          ())
  in
  (threads, live)

let gen_data ~n ~seed =
  let rng = Random.State.make [| seed; 0xDA7A |] in
  Array.init n (fun _ -> Random.State.int rng 1_000_000)

(* --- D = 1 routes through the classic path ----------------------------- *)

let test_single_lane_identity () =
  let mk () = E.create (Hsq.Config.make ~kappa:3 (Hsq.Config.Epsilon 0.02)) in
  let a = mk () and b = mk () in
  let data = gen_data ~n:5_000 ~seed:3 in
  Array.iter (fun v -> E.observe a v) data;
  Array.iter (fun v -> E.observe_domain b ~domain:42 v) data;
  Alcotest.(check int) "sizes agree" (E.total_size a) (E.total_size b);
  Alcotest.(check int) "lanes absent" 1 (E.ingest_domains b);
  for rank = 1 to 4_999 do
    if rank mod 500 = 0 then
      Alcotest.(check int)
        (Printf.sprintf "identical answer at rank %d" rank)
        (E.quick a ~rank) (E.quick b ~rank)
  done

(* --- volatile equivalence fuzz ----------------------------------------- *)

let fuzz_volatile seed () =
  let rng = Random.State.make [| seed; 0xF0 |] in
  let domains = 2 + Random.State.int rng 3 in
  let ingest_batch = [| 16; 64; 256 |].(Random.State.int rng 3) in
  let eng =
    E.create
      (Hsq.Config.make ~kappa:3 ~ingest_domains:domains ~ingest_batch
         (Hsq.Config.Epsilon 0.02))
  in
  Alcotest.(check int) "lane count" domains (E.ingest_domains eng);
  let archived = ref [] in
  let rounds = 3 in
  let per_lane = 2_000 + Random.State.int rng 2_000 in
  for round = 1 to rounds do
    let n = domains * per_lane in
    let data = gen_data ~n ~seed:(seed + (round * 131)) in
    let threads, live = concurrent_feed eng ~domains ~per_lane ~seed:(seed + round) ~data in
    (* Engine thread: queries against the moving stream.  Mid-flight
       answers only promise not to crash and to come from a consistent
       snapshot (whole propagated batches); bounds are checked at
       quiescence below. *)
    let queries = ref 0 in
    while Atomic.get live > 0 do
      if E.total_size eng > 0 then begin
        let n_now = E.total_size eng in
        let rank = 1 + Random.State.int rng n_now in
        let v = E.quick eng ~rank in
        ignore (E.rank_of eng v);
        incr queries
      end;
      Thread.yield ()
    done;
    Array.iter Thread.join threads;
    E.flush_ingest eng;
    archived := Array.to_list data @ !archived;
    let all = Array.of_list !archived in
    Array.sort Int.compare all;
    Alcotest.(check int)
      (Printf.sprintf "round %d: exact count (%d queries raced)" round !queries)
      (Array.length all) (E.total_size eng);
    check_bounds ~msg:(Printf.sprintf "seed %d round %d" seed round) eng all;
    if round < rounds then ignore (E.end_time_step eng)
  done

(* --- durable: crash-recover reproduces the acknowledged prefix --------- *)

let fuzz_durable seed () =
  with_store (fun dir ->
      let rng = Random.State.make [| seed; 0xD0 |] in
      let domains = 2 + Random.State.int rng 3 in
      let config ~ingest_domains =
        Hsq.Config.make ~kappa:3 ~ingest_domains ~ingest_batch:32
          ~checkpoint_every:(64 * (1 + Random.State.int rng 4))
          ~wal_dir:dir (Hsq.Config.Epsilon 0.02)
      in
      let eng, _ = E.open_or_recover (config ~ingest_domains:domains) in
      let per_lane = 1_500 in
      let n = domains * per_lane in
      let data = gen_data ~n ~seed:(seed + 17) in
      let threads, live = concurrent_feed eng ~domains ~per_lane ~seed ~data in
      (* Engine thread settles lane checkpoint debt while feeding. *)
      let checkpoints = ref 0 in
      while Atomic.get live > 0 do
        if E.checkpoint_if_due eng then incr checkpoints;
        Thread.yield ()
      done;
      Array.iter Thread.join threads;
      (* Everything returned from observe_domain is acknowledged
         (wal_sync = Always): a crash now must lose none of it. *)
      E.crash eng;
      (* Reopen under a DIFFERENT lane topology: recovery must replay
         every lane deterministically, then consolidate or grow. *)
      let domains' = [| 1; domains; domains + 2 |].(Random.State.int rng 3) in
      let recovered, report = E.open_or_recover (config ~ingest_domains:domains') in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: acked prefix exact (D=%d -> D=%d, %d ckpts, %d replayed)"
           seed domains domains' !checkpoints report.E.replayed)
        n (E.total_size recovered);
      let sorted = Array.copy data in
      Array.sort Int.compare sorted;
      check_bounds ~msg:(Printf.sprintf "seed %d recovered" seed) recovered sorted;
      (* The recovered store keeps working: feed its lanes again and
         close cleanly. *)
      let extra = gen_data ~n:200 ~seed:(seed + 29) in
      Array.iteri (fun i v -> E.observe_domain recovered ~domain:i v) extra;
      E.flush_ingest recovered;
      Alcotest.(check int) "post-recovery ingest exact" (n + 200) (E.total_size recovered);
      E.close recovered)

(* --- lane topology reconciliation (deterministic) ----------------------- *)

let test_lane_reconciliation () =
  with_store (fun dir ->
      let config ~ingest_domains =
        Hsq.Config.make ~kappa:3 ~ingest_domains ~ingest_batch:16 ~checkpoint_every:64
          ~wal_dir:dir (Hsq.Config.Epsilon 0.05)
      in
      let eng, _ = E.open_or_recover (config ~ingest_domains:4) in
      for i = 0 to 999 do
        E.observe_domain eng ~domain:(i mod 4) (i * 7919)
      done;
      E.crash eng;
      Alcotest.(check bool) "extra lane files exist" true
        (Sys.file_exists (Filename.concat dir "wal-3.log"));
      (* Shrink: consolidation absorbs lanes 2..3 and deletes the files. *)
      let narrow, _ = E.open_or_recover (config ~ingest_domains:2) in
      Alcotest.(check int) "shrunk store exact" 1000 (E.total_size narrow);
      Alcotest.(check bool) "lane 3 file gone" false
        (Sys.file_exists (Filename.concat dir "wal-3.log"));
      Alcotest.(check bool) "lane 2 file gone" false
        (Sys.file_exists (Filename.concat dir "wal-2.log"));
      for i = 0 to 199 do
        E.observe_domain narrow ~domain:i (i * 104729)
      done;
      E.crash narrow;
      (* Grow: fresh logs for the new lanes. *)
      let wide, _ = E.open_or_recover (config ~ingest_domains:6) in
      Alcotest.(check int) "grown store exact" 1200 (E.total_size wide);
      Alcotest.(check bool) "lane 5 file created" true
        (Sys.file_exists (Filename.concat dir "wal-5.log"));
      E.close wide)

(* --- metrics: per-lane accumulators and Atomic counters are exact ------ *)

let counter_value reg name =
  let prom = Metrics.to_prometheus reg in
  let value = ref None in
  String.split_on_char '\n' prom
  |> List.iter (fun line ->
         match String.index_opt line ' ' with
         | Some i when String.sub line 0 i = name ->
           value := float_of_string_opt (String.sub line (i + 1) (String.length line - i - 1))
         | _ -> ());
  match !value with
  | Some v -> v
  | None -> Alcotest.failf "metric %s not exported" name

let test_lane_metrics_exact () =
  let domains = 4 in
  let eng =
    E.create
      (Hsq.Config.make ~kappa:3 ~ingest_domains:domains ~ingest_batch:64
         (Hsq.Config.Epsilon 0.02))
  in
  let per_lane = 3_000 in
  let data = gen_data ~n:(domains * per_lane) ~seed:99 in
  let threads, live = concurrent_feed eng ~domains ~per_lane ~seed:99 ~data in
  (* Export the registry WHILE lanes are writing: counter_fn closures
     must read live per-lane state without tearing or raising, and the
     snapshot must never exceed the final total. *)
  let reg = E.metrics eng in
  while Atomic.get live > 0 do
    let mid = counter_value reg "hsq_ingest_observed_total" in
    if mid > float_of_int (domains * per_lane) then
      Alcotest.failf "mid-flight observed_total overshoots: %f" mid;
    Thread.yield ()
  done;
  Array.iter Thread.join threads;
  E.flush_ingest eng;
  Alcotest.(check (float 0.0))
    "observed_total exact at quiescence"
    (float_of_int (domains * per_lane))
    (counter_value reg "hsq_ingest_observed_total");
  Alcotest.(check (float 0.0)) "buffered gauge drained" 0.0 (counter_value reg "hsq_ingest_buffered");
  let handoffs = counter_value reg "hsq_ingest_handoffs_total" in
  if handoffs < 1.0 then Alcotest.failf "no hand-offs recorded (%f)" handoffs;
  (* Atomic query counters: exact under queries racing fresh ingest. *)
  let q = 500 in
  for i = 1 to q do
    ignore (E.quick eng ~rank:(1 + (i mod E.total_size eng)))
  done;
  Alcotest.(check (float 0.0))
    "quick_total exact" (float_of_int q)
    (counter_value reg "hsq_query_quick_total")

let () =
  let fuzz name f =
    List.init seeds (fun s -> Alcotest.test_case (Printf.sprintf "seed %d" s) `Slow (f s))
    |> fun cases -> (name, cases)
  in
  Alcotest.run "ingest"
    [
      ( "lanes",
        [
          Alcotest.test_case "D=1 identity" `Quick test_single_lane_identity;
          Alcotest.test_case "topology reconciliation" `Quick test_lane_reconciliation;
          Alcotest.test_case "metrics exact" `Quick test_lane_metrics_exact;
        ] );
      fuzz "volatile equivalence" fuzz_volatile;
      fuzz "durable crash-recover" fuzz_durable;
    ]
