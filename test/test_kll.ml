(* Tests for the KLL sketch: the eps*n rank guarantee, exact min/max,
   lazy sweep-compactor invariants, and — the properties GK cannot
   offer — merge correctness: merge-vs-sequential-insert rank
   agreement, associativity and commutativity within the bound, and
   serialize/deserialize round-trip identity (including replayed coin
   flips).  Seed counts scale through HSQ_KLL_SEEDS like the other
   fuzz suites. *)

open Hsq_sketch

(* Seed counts scale through the environment: the PR-gating CI job runs
   the default, the nightly job cranks HSQ_KLL_SEEDS up to hundreds. *)
let seed_count default =
  match Sys.getenv_opt "HSQ_KLL_SEEDS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with Some n when n > 0 -> n | _ -> default)
  | None -> default

(* Rank error of answering rank [r] with value [v] against the sorted
   ground truth: distance from r to [ |{x < v}| + 1, |{x <= v}| ]. *)
let rank_error sorted ~rank ~value =
  let upper = Hsq_util.Sorted.rank sorted value in
  let lower = min upper (Hsq_util.Sorted.rank_strict sorted value + 1) in
  if rank < lower then lower - rank else if rank > upper then rank - upper else 0

let max_error_over_all_ranks kll sorted =
  let n = Array.length sorted in
  let worst = ref 0 in
  let stride = max 1 (n / 2_000) in
  let r = ref 1 in
  while !r <= n do
    let v = Kll.query_rank kll !r in
    let e = rank_error sorted ~rank:!r ~value:v in
    if e > !worst then worst := e;
    r := !r + stride
  done;
  !worst

let feed ?(seed = 0) epsilon data =
  let kll = Kll.create ~seed ~epsilon () in
  Array.iter (Kll.insert kll) data;
  kll

let check_within_bound ?(what = "worst error") kll data =
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let bound =
    int_of_float (ceil (Kll.error_bound kll *. float_of_int (Array.length data)))
  in
  let worst = max_error_over_all_ranks kll sorted in
  Alcotest.(check bool)
    (Printf.sprintf "%s %d <= bound %d (n=%d)" what worst bound (Array.length data))
    true (worst <= bound)

let check_error_bound ?seed ~epsilon data =
  check_within_bound (feed ?seed epsilon data) data

(* --- direct eps*n guarantees, mirroring the GK suite ----------------- *)

let test_random_stream () =
  let rng = Hsq_util.Xoshiro.create 1 in
  check_error_bound ~epsilon:0.02
    (Array.init 20_000 (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000))

let test_sorted_stream () = check_error_bound ~epsilon:0.02 (Array.init 20_000 (fun i -> i))

let test_reverse_sorted_stream () =
  check_error_bound ~epsilon:0.02 (Array.init 20_000 (fun i -> 20_000 - i))

let test_constant_stream () = check_error_bound ~epsilon:0.05 (Array.make 10_000 42)

let test_two_values () =
  check_error_bound ~epsilon:0.05 (Array.init 10_000 (fun i -> i mod 2))

let test_small_streams () =
  List.iter
    (fun n -> check_error_bound ~epsilon:0.1 (Array.init n (fun i -> (i * 7919) mod 101)))
    [ 1; 2; 3; 5; 10; 17 ]

let test_min_max_exact () =
  let rng = Hsq_util.Xoshiro.create 4 in
  let data = Array.init 5_000 (fun _ -> 10 + Hsq_util.Xoshiro.int rng 1_000_000) in
  let kll = feed 0.01 data in
  let sorted = Array.copy data in
  Array.sort compare sorted;
  Alcotest.(check int) "min exact" sorted.(0) (Kll.min_value kll);
  Alcotest.(check int) "max exact" sorted.(4_999) (Kll.max_value kll)

let test_empty_raises () =
  let kll = Kll.create ~epsilon:0.1 () in
  Alcotest.check_raises "query" (Invalid_argument "Kll.query_rank: empty sketch") (fun () ->
      ignore (Kll.query_rank kll 1));
  Alcotest.check_raises "min" (Invalid_argument "Kll.min_value: empty sketch") (fun () ->
      ignore (Kll.min_value kll));
  Alcotest.(check int) "rank_of on empty" 0 (Kll.rank_of kll 7)

let test_create_validation () =
  List.iter
    (fun eps ->
      Alcotest.check_raises
        (Printf.sprintf "epsilon %g" eps)
        (Invalid_argument "Kll.create: epsilon must lie in (0, 1)")
        (fun () -> ignore (Kll.create ~epsilon:eps ())))
    [ 0.0; 1.0; -0.5; 2.0 ]

let test_capped_budget () =
  let words = 400 in
  let kll = Kll.create_capped ~words () in
  let rng = Hsq_util.Xoshiro.create 9 in
  for _ = 1 to 50_000 do
    Kll.insert kll (Hsq_util.Xoshiro.int rng 1_000_000)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "memory %d within budget %d" (Kll.memory_words kll) words)
    true
    (Kll.memory_words kll <= words);
  Alcotest.(check (list string)) "invariants hold" [] (Kll.check_invariants kll)

let test_insert_sorted_batch_equiv () =
  let rng = Hsq_util.Xoshiro.create 12 in
  let a = Kll.create ~epsilon:0.02 () in
  let all = ref [] in
  for _ = 1 to 40 do
    let batch =
      Array.init (1 + Hsq_util.Xoshiro.int rng 700) (fun _ ->
          Hsq_util.Xoshiro.int rng 1_000_000)
    in
    Array.sort compare batch;
    Kll.insert_sorted_batch a batch;
    all := batch :: !all
  done;
  let data = Array.concat !all in
  Alcotest.(check int) "count" (Array.length data) (Kll.count a);
  check_within_bound ~what:"batched worst error" a data;
  Alcotest.(check (list string)) "invariants hold" [] (Kll.check_invariants a)

(* --- merge properties -------------------------------------------------- *)

let gen_stream rng len =
  let shape = Hsq_util.Xoshiro.int rng 4 in
  Array.init len (fun i ->
      match shape with
      | 0 -> Hsq_util.Xoshiro.int rng 1_000_000
      | 1 -> i (* sorted *)
      | 2 -> Hsq_util.Xoshiro.int rng 30 (* heavy duplicates *)
      | _ -> 1_000_000 - i)

let merged_bound kll n = int_of_float (ceil (Kll.error_bound kll *. float_of_int n))

let check_merged_within merged data what =
  let sorted = Array.copy data in
  Array.sort compare sorted;
  Alcotest.(check int) (what ^ " count") (Array.length data) (Kll.count merged);
  let worst = max_error_over_all_ranks merged sorted in
  let bound = merged_bound merged (Array.length data) in
  if worst > bound then
    Alcotest.failf "%s: worst rank error %d above bound %d (n=%d)" what worst bound
      (Array.length data);
  Alcotest.(check (list string)) (what ^ " invariants") [] (Kll.check_invariants merged)

let run_merge_seed seed =
  let rng = Hsq_util.Xoshiro.create (0x5eed + (seed * 7919)) in
  let eps = 0.01 +. (0.04 *. Hsq_util.Xoshiro.float rng) in
  let streams =
    List.init 3 (fun i ->
        gen_stream rng (100 + Hsq_util.Xoshiro.int rng (if i = 0 then 20_000 else 8_000)))
  in
  let sketches =
    List.mapi (fun i s -> feed ~seed:(seed + i) eps s) streams
  in
  let union = Array.concat streams in
  match (sketches, streams) with
  | [ a; b; c ], [ sa; sb; _ ] ->
    (* merge agrees with sequential insertion of the union *)
    let ab = Kll.merge a b in
    check_merged_within ab (Array.append sa sb) "merge(a,b)";
    (* commutativity within bound *)
    check_merged_within (Kll.merge b a) (Array.append sa sb) "merge(b,a)";
    (* associativity within bound *)
    check_merged_within (Kll.merge ab c) union "merge(merge(a,b),c)";
    check_merged_within (Kll.merge a (Kll.merge b c)) union "merge(a,merge(b,c))";
    (* inputs unchanged by merge *)
    check_merged_within a sa "input a after merges"
  | _ -> assert false

let merge_cases =
  List.init (seed_count 12) (fun i ->
      let seed = 2_000 + (i * 13) in
      Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick (fun () -> run_merge_seed seed))

let test_merge_empty () =
  let a = feed 0.02 (Array.init 1_000 (fun i -> i)) in
  let e = Kll.create ~epsilon:0.02 () in
  check_merged_within (Kll.merge a e) (Array.init 1_000 (fun i -> i)) "merge with empty";
  check_merged_within (Kll.merge e a) (Array.init 1_000 (fun i -> i)) "empty merge"

(* --- serialize / deserialize ------------------------------------------- *)

(* Round-trip identity is behavioral, not just structural: the restored
   sketch must serialize identically, answer identically, and — because
   the coin seed and counter travel with it — keep answering
   identically after both copies ingest the same suffix. *)
let run_round_trip_seed seed =
  let rng = Hsq_util.Xoshiro.create (0xCAFE + (seed * 31)) in
  let eps = 0.01 +. (0.05 *. Hsq_util.Xoshiro.float rng) in
  let kll = Kll.create ~seed ~epsilon:eps () in
  let n = 50 + Hsq_util.Xoshiro.int rng 25_000 in
  for _ = 1 to n do
    Kll.insert kll (Hsq_util.Xoshiro.int rng 1_000_000)
  done;
  let image = Kll.serialize kll in
  let restored = Kll.deserialize image in
  Alcotest.(check (list string)) "restored invariants" [] (Kll.check_invariants restored);
  Alcotest.(check bool)
    "serialize . deserialize . serialize is the identity" true
    (Kll.serialize restored = image);
  Alcotest.(check int) "count" (Kll.count kll) (Kll.count restored);
  for _ = 1 to 50 do
    let r = 1 + Hsq_util.Xoshiro.int rng (Kll.count kll) in
    Alcotest.(check int)
      (Printf.sprintf "rank %d" r)
      (Kll.query_rank kll r) (Kll.query_rank restored r)
  done;
  (* identical suffix -> identical state: coin replay is exact *)
  let suffix =
    Array.init (100 + Hsq_util.Xoshiro.int rng 5_000) (fun _ ->
        Hsq_util.Xoshiro.int rng 1_000_000)
  in
  Array.iter (Kll.insert kll) suffix;
  Array.iter (Kll.insert restored) suffix;
  Alcotest.(check bool)
    "post-suffix serializations identical" true
    (Kll.serialize kll = Kll.serialize restored)

let round_trip_cases =
  List.init (seed_count 12) (fun i ->
      let seed = 4_000 + (i * 17) in
      Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick (fun () ->
          run_round_trip_seed seed))

let test_copy_replays () =
  let kll = feed ~seed:3 0.02 (Array.init 5_000 (fun i -> (i * 31) mod 4_096)) in
  let dup = Kll.copy kll in
  let suffix = Array.init 2_000 (fun i -> (i * 17) mod 9_001) in
  Array.iter (Kll.insert kll) suffix;
  Array.iter (Kll.insert dup) suffix;
  Alcotest.(check bool) "copy replays the original" true (Kll.serialize kll = Kll.serialize dup)

(* Teeth: structural damage must be rejected, not absorbed. *)
let test_deserialize_rejects_damage () =
  let kll = feed ~seed:5 0.05 (Array.init 3_000 (fun i -> (i * 13) mod 50_000)) in
  let image = Kll.serialize kll in
  let mutate f =
    let d = Array.copy image in
    f d;
    d
  in
  let cases =
    [
      ("truncated", Array.sub image 0 (Array.length image - 3));
      ("bad epsilon", mutate (fun d -> d.(1) <- 0));
      ("negative count", mutate (fun d -> d.(3) <- -4));
      ("level count", mutate (fun d -> d.(8) <- 5_000));
      ("weight broken", mutate (fun d -> d.(3) <- d.(3) + 1));
      (* level 0 is wide at this epsilon, so forcing its first item up
         to the recorded maximum breaks ascending order *)
      ("unsorted level", mutate (fun d -> d.(9 + (4 * d.(8))) <- d.(7)));
      ("escaped envelope", mutate (fun d -> d.(Array.length d - 1) <- max_int));
    ]
  in
  List.iter
    (fun (name, damaged) ->
      match Kll.deserialize damaged with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "%s: damaged image accepted" name)
    cases

(* --- qcheck properties ------------------------------------------------- *)

let qcheck_seed =
  QCheck.Gen.int_range 0 0x3FFFFFFF

let prop_insert_bound =
  QCheck.Test.make ~name:"kll stays within eps*n on random streams"
    ~count:(seed_count 15)
    (QCheck.make qcheck_seed)
    (fun seed ->
      let rng = Hsq_util.Xoshiro.create seed in
      let n = 10 + Hsq_util.Xoshiro.int rng 15_000 in
      let data = gen_stream rng n in
      let kll = feed ~seed 0.02 data in
      let sorted = Array.copy data in
      Array.sort compare sorted;
      max_error_over_all_ranks kll sorted
      <= int_of_float (ceil (Kll.error_bound kll *. float_of_int n))
      && Kll.check_invariants kll = [])

let prop_merge_weight =
  QCheck.Test.make ~name:"merge conserves count and invariants" ~count:(seed_count 15)
    (QCheck.make qcheck_seed)
    (fun seed ->
      let rng = Hsq_util.Xoshiro.create (seed lxor 0xBEEF) in
      let sa = gen_stream rng (1 + Hsq_util.Xoshiro.int rng 6_000) in
      let sb = gen_stream rng (1 + Hsq_util.Xoshiro.int rng 6_000) in
      let m = Kll.merge (feed ~seed 0.03 sa) (feed ~seed:(seed + 1) 0.03 sb) in
      Kll.count m = Array.length sa + Array.length sb && Kll.check_invariants m = [])

let () =
  Alcotest.run "kll"
    [
      ( "bounds",
        [
          Alcotest.test_case "random stream" `Quick test_random_stream;
          Alcotest.test_case "sorted stream" `Quick test_sorted_stream;
          Alcotest.test_case "reverse sorted" `Quick test_reverse_sorted_stream;
          Alcotest.test_case "constant stream" `Quick test_constant_stream;
          Alcotest.test_case "two values" `Quick test_two_values;
          Alcotest.test_case "small streams" `Quick test_small_streams;
          Alcotest.test_case "min/max exact" `Quick test_min_max_exact;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "capped budget" `Quick test_capped_budget;
          Alcotest.test_case "sorted batch equiv" `Quick test_insert_sorted_batch_equiv;
        ] );
      ("merge fuzz", Alcotest.test_case "merge empty" `Quick test_merge_empty :: merge_cases);
      ( "round trip",
        Alcotest.test_case "copy replays" `Quick test_copy_replays
        :: Alcotest.test_case "rejects damage" `Quick test_deserialize_rejects_damage
        :: round_trip_cases );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_insert_bound;
          QCheck_alcotest.to_alcotest prop_merge_weight;
        ] );
    ]
