(* Seeded shard-kill chaos for the sharded warehouse.

   Per seed: a K=4 durable group ingests under an exact oracle (acked
   observations only), answers a healthy sweep, then loses one shard
   mid-traffic — either its device starts failing every read (breaker /
   probe-retry path: the accurate bisection drops it at query time) or
   the whole shard process dies ([mark_down]: routing raises, fused
   answers exclude it).  While degraded, every fused answer must stay
   within its self-reported bound against the full oracle, finish
   within the deadline, and widen by no more than the victim's element
   count.  Healing (clear the injector + repair scrub, or rejoin) must
   restore exact acked totals — zero acknowledged-observation loss —
   and un-degraded answers.

   HSQ_SHARD_CHAOS_SEEDS scales the seed count (default 10; nightly CI
   runs 100). *)

module E = Hsq.Engine
module G = Hsq_shard.Shard_group
module BD = Hsq_storage.Block_device
module Oracle = Hsq_workload.Oracle

let seeds =
  match Sys.getenv_opt "HSQ_SHARD_CHAOS_SEEDS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 10)
  | None -> 10

let k = 4
let deadline_ms = 2_000.0
let deadline_slack_s = 2.0

let temp_root seed =
  let dir = Filename.temp_file (Printf.sprintf "hsq_shard_chaos%d" seed) "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let sweep_ranks n =
  List.sort_uniq compare
    (List.filter (fun r -> r >= 1 && r <= n) [ 1; n / 10; n / 4; n / 2; (3 * n) / 4; n ])

(* One fused query checked against ground truth: the answer's true rank
   error never exceeds the self-reported bound, and the query finishes
   inside its deadline (plus scheduler slack). *)
let check_accurate ~what g oracle rank =
  let t0 = Unix.gettimeofday () in
  let v, report = G.accurate ~deadline_ms g ~rank in
  let elapsed = Unix.gettimeofday () -. t0 in
  if elapsed > (deadline_ms /. 1000.0) +. deadline_slack_s then
    Alcotest.failf "%s: accurate rank %d took %.2fs, deadline %.1fs" what rank elapsed
      (deadline_ms /. 1000.0);
  let err = Oracle.rank_error oracle ~rank ~value:v in
  if float_of_int err > report.G.rank_error_bound then
    Alcotest.failf "%s: accurate rank %d error %d above reported bound %.1f" what rank err
      report.G.rank_error_bound;
  report

let check_quick ~what g oracle rank =
  let v, bound, deg = G.quick_with_bound g ~rank in
  let err = Oracle.rank_error oracle ~rank ~value:v in
  if float_of_int err > bound then
    Alcotest.failf "%s: quick rank %d error %d above bound %.1f" what rank err bound;
  (bound, deg)

let ingest_acked g oracle rng n domain =
  for _ = 1 to n do
    let v = Hsq_util.Xoshiro.int rng domain in
    match G.observe g v with
    | () -> Oracle.add oracle v
    | exception G.Shard_unavailable _ -> ()
    | exception BD.Device_error _ -> ()
  done

let run_seed seed () =
  let root = temp_root seed in
  Fun.protect
    ~finally:(fun () -> try rm_rf root with _ -> ())
    (fun () ->
      let cfg =
        Hsq.Config.make ~kappa:3 ~block_size:32 ~quarantine_after:2 ~shards:k ~wal_dir:root
          ~checkpoint_every:500 (Hsq.Config.Epsilon 0.05)
      in
      let g, recoveries = G.open_or_recover cfg in
      List.iter
        (fun { G.shard; outcome; _ } ->
          if Result.is_error outcome then Alcotest.failf "shard %d dirty on fresh open" shard)
        recoveries;
      let rng = Hsq_util.Xoshiro.create (0x5A5A_0000 + seed) in
      let oracle = Oracle.create () in
      let domain = 1 + Hsq_util.Xoshiro.int rng 1_000_000 in
      let victim = seed mod k in
      let injector_mode = seed / k mod 2 = 0 in

      (* healthy warm-up: several archived steps plus a live stream tail *)
      for _ = 1 to 3 do
        ingest_acked g oracle rng (400 + Hsq_util.Xoshiro.int rng 200) domain;
        List.iter
          (fun (s, r) ->
            if Result.is_error r then Alcotest.failf "healthy end_time_step failed on shard %d" s)
          (G.end_time_step g)
      done;
      ingest_acked g oracle rng 150 domain;
      Alcotest.(check int) "healthy: acked == stored" (Oracle.count oracle) (G.total_size g);

      let healthy_quick = Hashtbl.create 8 in
      List.iter
        (fun rank ->
          let bound, deg = check_quick ~what:"healthy" g oracle rank in
          (match deg with
          | `None -> ()
          | d -> Alcotest.failf "healthy quick degraded: %s" (G.degradation_label d));
          Hashtbl.replace healthy_quick rank bound;
          let report = check_accurate ~what:"healthy" g oracle rank in
          match report.G.degradation with
          | `None -> ()
          | d -> Alcotest.failf "healthy accurate degraded: %s" (G.degradation_label d))
        (sweep_ranks (G.total_size g));

      (* kill the victim mid-traffic *)
      if injector_mode then begin
        match G.engine g victim with
        | None -> Alcotest.fail "victim already down"
        | Some e -> BD.set_injector (E.device e) (Some (fun _op ~attempt:_ _addr -> Some BD.Fail))
      end
      else G.mark_down g victim ~reason:"chaos: process killed";
      let victim_elems = G.shard_elements g victim in

      (* traffic keeps flowing; only survivor-routed elements ack *)
      ingest_acked g oracle rng 300 domain;
      if not injector_mode then
        Alcotest.(check int) "degraded: acked == stored" (Oracle.count oracle) (G.total_size g);

      (* degraded sweep: bounds stay honest against the full oracle
         (which still counts everything the dead shard acked), answers
         arrive within the deadline, and the widening is at most the
         victim's element count *)
      let saw_degraded = ref false in
      List.iter
        (fun rank ->
          let bound, deg = check_quick ~what:"degraded" g oracle rank in
          (match Hashtbl.find_opt healthy_quick rank with
          | Some healthy_bound ->
            (* the stream tail grew since the healthy sweep; its worst
               extra window is the new elements themselves *)
            let growth = 300.0 in
            if bound > healthy_bound +. float_of_int victim_elems +. growth +. 1e-6 then
              Alcotest.failf
                "degraded quick rank %d: bound %.1f exceeds healthy %.1f + victim %d + growth"
                rank bound healthy_bound victim_elems
          | None -> ());
          if not injector_mode then begin
            match deg with
            | `Shard_down [ s ] when s = victim -> ()
            | d ->
              Alcotest.failf "degraded quick rank %d: expected shard_down [%d], got %s" rank
                victim (G.degradation_label d)
          end;
          let report = check_accurate ~what:"degraded" g oracle rank in
          if report.G.degradation <> `None then saw_degraded := true
          else if not injector_mode then
            (* a dead shard always shows in the report; a faulty device
               only bites when the bisection actually probes it, so an
               extreme rank can legitimately converge from summaries
               alone *)
            Alcotest.failf "degraded accurate rank %d reported no degradation" rank;
          (* the clean dead-shard case widens by at most the victim's
             elements on top of the ±εm contract (the injector path may
             additionally quarantine before dropping, so it only gets
             the honesty check above) *)
          if
            (not injector_mode)
            && report.G.rank_error_bound
               > float_of_int victim_elems
                 +. (G.epsilon g *. float_of_int (G.total_size g))
                 +. 50.0
          then
            Alcotest.failf "degraded accurate rank %d: bound %.1f wider than victim %d + εm"
              rank report.G.rank_error_bound victim_elems)
        (sweep_ranks (G.total_size g));
      if not !saw_degraded then
        Alcotest.fail "no query in the degraded sweep reported any degradation";

      (* heal: clear the fault and repair-scrub, or restart + rejoin *)
      if injector_mode then begin
        (match G.engine g victim with
        | Some e -> BD.set_injector (E.device e) None
        | None ->
          (* the query path may have taken the shard fully down; bring
             it back the process-death way *)
          ());
        match G.engine g victim with
        | Some _ ->
          List.iter
            (fun (s, (r : Hsq.Persist.scrub_report)) ->
              if r.Hsq.Persist.still_quarantined > 0 then
                Alcotest.failf "heal scrub left %d partitions quarantined on shard %d"
                  r.Hsq.Persist.still_quarantined s)
            (G.scrub ~repair:true g)
        | None -> (
          match G.rejoin g victim with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "rejoin after injector death failed: %s" msg)
      end
      else begin
        match G.rejoin g victim with
        | Ok (_recovery, scrub) ->
          if scrub.Hsq.Persist.still_quarantined > 0 then
            Alcotest.failf "rejoin scrub left %d partitions quarantined"
              scrub.Hsq.Persist.still_quarantined
        | Error msg -> Alcotest.failf "rejoin failed: %s" msg
      end;
      Alcotest.(check (list int)) "no shards down after heal" [] (G.shards_down g);

      (* zero acknowledged loss: the store holds exactly what it acked *)
      Alcotest.(check int) "healed: acked == stored, zero loss" (Oracle.count oracle)
        (G.total_size g);

      (* post-heal sweep: bounds back to the un-degraded contract *)
      ingest_acked g oracle rng 100 domain;
      List.iter
        (fun (s, r) ->
          if Result.is_error r then Alcotest.failf "post-heal end_time_step failed on shard %d" s)
        (G.end_time_step g);
      List.iter
        (fun rank ->
          let _bound, deg = check_quick ~what:"healed" g oracle rank in
          (match deg with
          | `None -> ()
          | d -> Alcotest.failf "healed quick degraded: %s" (G.degradation_label d));
          let report = check_accurate ~what:"healed" g oracle rank in
          match report.G.degradation with
          | `None -> ()
          | d -> Alcotest.failf "healed accurate degraded: %s" (G.degradation_label d))
        (sweep_ranks (G.total_size g));
      G.close g)

(* --- kill two of four: exact widening ----------------------------------

   Losing any two shards — adjacent in routing order or not — must
   degrade fused quick answers to exactly the survivors' window plus
   both victims' frozen element counts, with no hidden slack.  The test
   recomputes the survivor summary through the same public pieces the
   group itself fuses (active partitions → hist_aggregate → build_fused
   → rank_window) and requires the reported bound to match to 1e-9. *)

module Li = Hsq_hist.Level_index
module Us = Hsq.Union_summary

let run_two_kill ~victims seed () =
  let root = temp_root (1000 + seed) in
  Fun.protect
    ~finally:(fun () -> try rm_rf root with _ -> ())
    (fun () ->
      let cfg =
        Hsq.Config.make ~kappa:3 ~block_size:32 ~shards:k ~wal_dir:root ~checkpoint_every:500
          (Hsq.Config.Epsilon 0.05)
      in
      let g, _ = G.open_or_recover cfg in
      let rng = Hsq_util.Xoshiro.create (0x2B2B_0000 + seed) in
      let oracle = Oracle.create () in
      let domain = 1 + Hsq_util.Xoshiro.int rng 1_000_000 in
      for _ = 1 to 3 do
        ingest_acked g oracle rng (400 + Hsq_util.Xoshiro.int rng 200) domain;
        List.iter
          (fun (s, r) ->
            if Result.is_error r then Alcotest.failf "end_time_step failed on shard %d" s)
          (G.end_time_step g)
      done;
      ingest_acked g oracle rng 150 domain;
      let v1, v2 = victims in
      G.mark_down g v1 ~reason:"chaos: double kill";
      G.mark_down g v2 ~reason:"chaos: double kill";
      let victim_elems = G.shard_elements g v1 + G.shard_elements g v2 in
      (* survivors keep acking *)
      ingest_acked g oracle rng 200 domain;
      Alcotest.(check int) "acked == stored" (Oracle.count oracle) (G.total_size g);
      let survivors =
        List.filter_map
          (fun i -> if i = v1 || i = v2 then None else G.engine g i)
          (List.init k Fun.id)
      in
      Alcotest.(check int) "two survivors" (k - 2) (List.length survivors);
      let partitions = List.concat_map (fun e -> Li.active_partitions (E.hist e)) survivors in
      let streams = List.map E.stream_summary survivors in
      let us = Us.build_fused ~agg:(Us.hist_aggregate ~partitions) ~streams in
      let n = Us.n_total us in
      List.iter
        (fun rank ->
          let v, bound, deg = G.quick_with_bound g ~rank in
          (match deg with
          | `Shard_down ks when List.sort compare ks = List.sort compare [ v1; v2 ] -> ()
          | d ->
            Alcotest.failf "rank %d: expected shards %d,%d down, got %s" rank v1 v2
              (G.degradation_label d));
          let lo, hi = Us.rank_window us v in
          let r = float_of_int rank in
          let expected = Float.max (hi -. r) (r -. lo) +. float_of_int victim_elems in
          if Float.abs (bound -. expected) > 1e-9 then
            Alcotest.failf
              "rank %d: reported bound %.12g, survivor window + victims gives %.12g" rank
              bound expected;
          let err = Oracle.rank_error oracle ~rank ~value:v in
          if float_of_int err > bound then
            Alcotest.failf "rank %d: true error %d above reported bound %.1f" rank err bound)
        (sweep_ranks n);
      G.close g)

let () =
  let cases =
    List.init seeds (fun seed ->
        Alcotest.test_case (Printf.sprintf "seed %d" seed) `Slow (run_seed seed))
  in
  let two_kill_cases =
    List.concat_map
      (fun v ->
        [
          Alcotest.test_case
            (Printf.sprintf "adjacent %d,%d" v ((v + 1) mod k))
            `Slow
            (run_two_kill ~victims:(v, (v + 1) mod k) (2 * v));
          Alcotest.test_case
            (Printf.sprintf "non-adjacent %d,%d" v ((v + 2) mod k))
            `Slow
            (run_two_kill ~victims:(v, (v + 2) mod k) ((2 * v) + 1));
        ])
      [ 0; 1; 2; 3 ]
  in
  Alcotest.run "shard_chaos"
    [
      ("kill one of four shards", cases); ("kill two of four shards", two_kill_cases);
    ]
