(* Chaos harness: full engine lifecycles driven against seeded fault
   schedules (PR-gate default: 10 seeds; nightly runs 200 via the
   HSQ_CHAOS_SEEDS environment variable).

   Every seed deterministically derives a scenario — transient read
   faults the retries absorb, persistent per-block faults that drive
   partition quarantine, or a whole-device outage that trips the
   circuit breaker — and asserts, at every phase:

   - no crash: queries and ingest either succeed or degrade/raise along
     their documented containment paths, never anything else;
   - bounds hold: every answer (quick and accurate, degraded or not) is
     within its self-reported rank-error bound of an exact oracle;
   - deadlines are respected within a generous scheduling slack;
   - after the fault clears, breaker and quarantine converge back to
     healthy: a repair scrub reinstates everything, the breaker closes,
     and queries return to full undegraded accuracy.

   A failing seed prints as its own alcotest case ("seed N"), so the
   failing schedule is reproducible from the test name alone. *)

module E = Hsq.Engine
module BD = Hsq_storage.Block_device

let seeds =
  match Sys.getenv_opt "HSQ_CHAOS_SEEDS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 10)
  | None -> 10

(* Stateless per-(seed, block) coin: safe to call from pool domains and
   stable across retries, so a "persistent" fault really is. *)
let coin ~seed ~salt addr pct =
  let h = (addr * 2654435761) lxor (seed * 40503) lxor (salt * 8191) in
  (h land 0x3fffffff) mod 100 < pct

type scenario = Transient | Persistent_blocks | Device_down

let scenario_name = function
  | Transient -> "transient"
  | Persistent_blocks -> "persistent-blocks"
  | Device_down -> "device-down"

(* Deadline slack: the deadline is checked between bisection iterations
   and probe rounds are cooperatively cancelled, but a single in-flight
   probe may still pay its full retry schedule (3 attempts, 50 ms
   backoff cap) several times before the breaker opens. *)
let deadline_slack_s = 2.0

let run_seed seed () =
  let rng = Hsq_util.Xoshiro.create (0x5EED0 + seed) in
  let config =
    Hsq.Config.make ~kappa:3 ~block_size:32 ~quarantine_after:2 (Hsq.Config.Epsilon 0.05)
  in
  let eng = E.create config in
  let dev = E.device eng in
  let oracle = Hsq_workload.Oracle.create () in
  let ingest n =
    let b = Array.init n (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000) in
    Hsq_workload.Oracle.add_batch oracle b;
    ignore (E.ingest_batch eng b)
  in
  (* Ingest under an active fault schedule is contained, not crashed.
     Normally it simply succeeds: the level-0 run write is healthy in
     every scenario here, and a read fault interrupting the merge
     cascade defers the merge (update_report.deferred_merge) instead of
     surfacing — the repair scrub retries it.  If a fault ever does
     surface pre-archive, the rollover must have been atomic: batch
     retained in the stream, warehouse untouched. *)
  let ingest_contained n =
    let stream_before = E.stream_size eng and hist_before = E.hist_size eng in
    try ingest n
    with BD.Device_error _ ->
      Alcotest.(check int)
        (Printf.sprintf "seed %d: failed rollover keeps the batch" seed)
        (stream_before + n) (E.stream_size eng);
      Alcotest.(check int)
        (Printf.sprintf "seed %d: failed rollover leaves the warehouse" seed)
        hist_before (E.hist_size eng)
  in
  let ranks () =
    let n = E.total_size eng in
    List.map
      (fun phi -> max 1 (int_of_float (ceil (phi *. float_of_int n))))
      [ 0.1; 0.5; 0.9 ]
  in
  let check_accurate ?deadline_ms ~phase rank =
    let t0 = Unix.gettimeofday () in
    let v, report = E.accurate ?deadline_ms eng ~rank in
    let elapsed = Unix.gettimeofday () -. t0 in
    (match deadline_ms with
    | Some d when elapsed > (d /. 1000.0) +. deadline_slack_s ->
      Alcotest.failf "seed %d [%s]: deadline %.1f ms overshot: took %.3f s" seed phase d
        elapsed
    | _ -> ());
    let err = Hsq_workload.Oracle.rank_error oracle ~rank ~value:v in
    if float_of_int err > report.E.rank_error_bound then
      Alcotest.failf "seed %d [%s]: rank %d err %d > reported bound %.1f (degradation %s)"
        seed phase rank err report.E.rank_error_bound
        (E.degradation_label report.E.degradation);
    report
  in
  let check_quick ~phase rank =
    let v, bound = E.quick_with_bound eng ~rank in
    let err = Hsq_workload.Oracle.rank_error oracle ~rank ~value:v in
    if float_of_int err > bound then
      Alcotest.failf "seed %d [%s]: quick rank %d err %d > bound %.1f" seed phase rank err
        bound
  in
  let query_sweep ~phase =
    List.iter
      (fun r ->
        ignore (check_accurate ~phase r);
        check_quick ~phase r)
      (ranks ())
  in
  (* --- healthy warm-up ------------------------------------------------ *)
  let steps = 4 + Hsq_util.Xoshiro.int rng 4 in
  for _ = 1 to steps do
    ingest (400 + Hsq_util.Xoshiro.int rng 400)
  done;
  for _ = 1 to 50 + Hsq_util.Xoshiro.int rng 200 do
    let v = Hsq_util.Xoshiro.int rng 1_000_000 in
    E.observe eng v;
    Hsq_workload.Oracle.add oracle v
  done;
  query_sweep ~phase:"healthy";
  (* --- fault burst ---------------------------------------------------- *)
  let scenario =
    match Hsq_util.Xoshiro.int rng 3 with
    | 0 -> Transient
    | 1 -> Persistent_blocks
    | _ -> Device_down
  in
  let phase = "burst:" ^ scenario_name scenario in
  (match scenario with
  | Transient ->
    (* first attempt of ~40% of reads fails: the retry schedule absorbs
       every one of them *)
    BD.set_injector dev
      (Some
         (fun op ~attempt addr ->
           if op = BD.Read && attempt = 1 && coin ~seed ~salt:1 addr 40 then Some BD.Fail
           else None))
  | Persistent_blocks ->
    (* ~15% of blocks are bad on every attempt, failing or corrupt:
       their partitions quarantine after [quarantine_after] strikes *)
    BD.set_injector dev
      (Some
         (fun op ~attempt:_ addr ->
           if op = BD.Read && coin ~seed ~salt:2 addr 15 then
             if coin ~seed ~salt:3 addr 50 then Some BD.Fail else Some (BD.Corrupt (addr land 7))
           else None))
  | Device_down ->
    (* every read fails: the breaker opens and queries degrade to the
       in-memory summary *)
    BD.set_fault dev (Some (fun op _ -> op = BD.Read)));
  query_sweep ~phase;
  (* a deadline query mid-burst, cut or not, must respect the clock and
     its reported bound *)
  let dl = 1.0 +. (10.0 *. Hsq_util.Xoshiro.float rng) in
  ignore (check_accurate ~deadline_ms:dl ~phase:(phase ^ "+deadline") (List.nth (ranks ()) 1));
  (* the ingest path under the same schedule is contained, not crashed *)
  ingest_contained (200 + Hsq_util.Xoshiro.int rng 200);
  query_sweep ~phase:(phase ^ "+ingest");
  (* --- heal and converge ---------------------------------------------- *)
  BD.set_injector dev None;
  BD.set_fault dev None;
  let rep = Hsq.Persist.scrub ~repair:true eng in
  if rep.Hsq.Persist.still_quarantined <> 0 then
    Alcotest.failf "seed %d: %d partitions still quarantined after the repair scrub" seed
      rep.Hsq.Persist.still_quarantined;
  if BD.breaker_state dev <> Hsq_storage.Breaker.Closed then
    Alcotest.failf "seed %d: breaker %s after heal" seed
      (Hsq_storage.Breaker.state_to_string (BD.breaker_state dev));
  List.iter
    (fun r ->
      let report = check_accurate ~phase:"healed" r in
      if report.E.degradation <> `None then
        Alcotest.failf "seed %d: still degraded (%s) after heal" seed
          (E.degradation_label report.E.degradation);
      check_quick ~phase:"healed" r)
    (ranks ());
  (* life goes on: post-heal ingest archives cleanly (including any
     batch a failed rollover retained) and answers stay exact-bounded *)
  ingest (300 + Hsq_util.Xoshiro.int rng 300);
  query_sweep ~phase:"post-heal";
  Alcotest.(check (list string))
    (Printf.sprintf "seed %d: invariants at end of life" seed)
    []
    (Hsq_hist.Level_index.check_invariants (E.hist eng))

let () =
  Alcotest.run "chaos"
    [
      ( "seeded lifecycles",
        List.init seeds (fun i ->
            Alcotest.test_case (Printf.sprintf "seed %d" i) `Quick (run_seed i)) );
    ]
