(* Observability layer: the metrics registry, the trace-span collector,
   and Io_stats' torn-read-freedom guarantee.

   The concurrency tests hammer one shared counter/histogram from
   several domains through Parallel.Pool and demand *exact* sums — the
   registry's contract is lossless accounting, not sampling. The
   boundary tests pin the closed-open [lo, hi) bucket convention: an
   observation equal to a boundary lands in the higher bucket. *)

module Metrics = Hsq_obs.Metrics
module Trace = Hsq_obs.Trace
module Io_stats = Hsq_storage.Io_stats
module Pool = Hsq_util.Parallel.Pool

(* --- counters and gauges ------------------------------------------------ *)

let test_counter_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "t_total" in
  Metrics.Counter.inc c;
  Metrics.Counter.inc ~by:41 c;
  Alcotest.(check int) "inc accumulates" 42 (Metrics.Counter.value c);
  (* Registration is idempotent by name: same object comes back. *)
  let c' = Metrics.counter reg "t_total" in
  Metrics.Counter.inc c';
  Alcotest.(check int) "same counter behind the name" 43 (Metrics.Counter.value c);
  Alcotest.(check (option int)) "counter_value" (Some 43) (Metrics.counter_value reg "t_total");
  Alcotest.(check (option int)) "counter_value on absent name" None
    (Metrics.counter_value reg "nope");
  Metrics.Counter.set c 0;
  Alcotest.(check int) "set rewinds (reset path)" 0 (Metrics.Counter.value c);
  (* Same name, different type: a naming bug, fails loudly. *)
  Alcotest.check_raises "type mismatch rejected"
    (Invalid_argument "Metrics: \"t_total\" already registered as a counter") (fun () ->
      ignore (Metrics.gauge reg "t_total"))

let test_gauge_basics () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "t_gauge" in
  Metrics.Gauge.set g 2.5;
  Metrics.Gauge.add g 1.0;
  Alcotest.(check (float 1e-9)) "set+add" 3.5 (Metrics.Gauge.value g);
  let cell = ref 7 in
  Metrics.counter_fn reg "t_pull_total" (fun () -> !cell);
  Metrics.gauge_fn reg "t_pull_gauge" (fun () -> float_of_int !cell /. 2.0);
  Alcotest.(check (option int)) "counter_fn reads through" (Some 7)
    (Metrics.counter_value reg "t_pull_total");
  cell := 9;
  Alcotest.(check (option int)) "counter_fn is pull-based" (Some 9)
    (Metrics.counter_value reg "t_pull_total")

(* --- histogram bucket semantics ----------------------------------------- *)

(* bounds = [1; 2; 4] → buckets (-inf,1) [1,2) [2,4) [4,+inf). *)
let small_hist reg = Metrics.histogram ~start:1.0 ~factor:2.0 ~buckets:3 reg "t_hist"

let test_histogram_boundaries () =
  let reg = Metrics.create () in
  let h = small_hist reg in
  let idx = Metrics.Histogram.bucket_index h in
  Alcotest.(check int) "below first bound" 0 (idx 0.5);
  Alcotest.(check int) "equal to a boundary -> higher bucket" 1 (idx 1.0);
  Alcotest.(check int) "interior" 1 (idx 1.5);
  Alcotest.(check int) "boundary 2.0 -> higher bucket" 2 (idx 2.0);
  Alcotest.(check int) "just under a boundary" 2 (idx 3.999);
  Alcotest.(check int) "last boundary -> overflow bucket" 3 (idx 4.0);
  Alcotest.(check int) "far overflow" 3 (idx 1e9);
  List.iter (Metrics.Histogram.observe h) [ 0.5; 1.0; 1.5; 2.0; 3.999; 4.0; 1e9 ];
  Alcotest.(check int) "count = observations" 7 (Metrics.Histogram.count h);
  let buckets = Metrics.Histogram.buckets h in
  Alcotest.(check int) "bounds+1 buckets" 4 (Array.length buckets);
  let counts = Array.map (fun (_, _, n) -> n) buckets in
  Alcotest.(check (array int)) "per-bucket placement" [| 1; 2; 2; 2 |] counts;
  let lo0, _, _ = buckets.(0) and _, hi3, _ = buckets.(3) in
  Alcotest.(check bool) "first lo is -inf" true (lo0 = neg_infinity);
  Alcotest.(check bool) "last hi is +inf" true (hi3 = infinity)

(* --- exact accounting under domains ------------------------------------- *)

let test_concurrent_exactness () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "t_conc_total" in
  let h = Metrics.histogram ~start:1.0 ~factor:2.0 ~buckets:8 reg "t_conc_hist" in
  let pool = Pool.create ~workers:3 () in
  let items = 8 and per_item = 5_000 in
  Pool.run pool ~n:items (fun i ->
      for k = 1 to per_item do
        Metrics.Counter.inc c;
        (* Everything lands in bucket [1,2): placement contention too. *)
        Metrics.Histogram.observe h (1.0 +. (float_of_int ((i + k) mod 7) /. 8.0))
      done);
  Pool.shutdown pool;
  let expect = items * per_item in
  Alcotest.(check int) "counter sums exactly" expect (Metrics.Counter.value c);
  Alcotest.(check int) "histogram count sums exactly" expect (Metrics.Histogram.count h);
  let bucket_total = Array.fold_left (fun a (_, _, n) -> a + n) 0 (Metrics.Histogram.buckets h) in
  Alcotest.(check int) "bucket counts sum to total" expect bucket_total

(* --- exporter stability -------------------------------------------------- *)

let test_exporters_stable_and_sorted () =
  let reg = Metrics.create () in
  (* Register deliberately out of name order. *)
  ignore (Metrics.counter ~help:"zeta" reg "t_z_total");
  let h = Metrics.histogram ~start:1.0 ~factor:2.0 ~buckets:2 reg "t_m_hist" in
  let g = Metrics.gauge reg "t_a_gauge" in
  Metrics.Gauge.set g 1.25;
  Metrics.Histogram.observe h 1.5;
  Metrics.counter_fn reg "t_k_total" (fun () -> 3);
  Alcotest.(check (list string)) "names sorted"
    [ "t_a_gauge"; "t_k_total"; "t_m_hist"; "t_z_total" ]
    (Metrics.names reg);
  let j1 = Metrics.to_json reg and p1 = Metrics.to_prometheus reg in
  let j2 = Metrics.to_json reg and p2 = Metrics.to_prometheus reg in
  Alcotest.(check string) "json export is reproducible" j1 j2;
  Alcotest.(check string) "prometheus export is reproducible" p1 p2;
  let contains hay needle =
    match Str.search_forward (Str.regexp_string needle) hay 0 with
    | _ -> true
    | exception Not_found -> false
  in
  Alcotest.(check bool) "json leads with the first name" true
    (String.length j1 > 12 && String.sub j1 0 12 = "{\"t_a_gauge\"");
  (* Spot-check the cumulative histogram lines, +Inf last. *)
  Alcotest.(check bool) "prometheus cumulative +Inf bucket" true
    (contains p1 "t_m_hist_bucket{le=\"+Inf\"} 1");
  Alcotest.(check bool) "prometheus histogram count line" true (contains p1 "t_m_hist_count 1")

(* --- traces -------------------------------------------------------------- *)

let test_trace_nesting () =
  let tr = Trace.create () in
  let result =
    Trace.with_span tr ~attrs:[ ("rank", "7") ] "query.accurate" (fun root ->
        Trace.with_span tr "bisect" (fun b -> Trace.add_attr tr b "iter" "1");
        Trace.with_span tr "bisect" (fun b ->
            Trace.add_attr tr b "iter" "2";
            Trace.add_attr tr b "iter" "2b" (* last write wins *));
        Trace.add_attr tr root "iterations" "2";
        42)
  in
  Alcotest.(check int) "with_span returns the body's value" 42 result;
  match Trace.roots tr with
  | [ root ] ->
    Alcotest.(check string) "root name" "query.accurate" (Trace.name root);
    Alcotest.(check (option string)) "ctor attr" (Some "7") (Trace.attr root "rank");
    Alcotest.(check (option string)) "late attr" (Some "2") (Trace.attr root "iterations");
    Alcotest.(check bool) "closed span has duration" true (Trace.duration_s root > 0.0);
    let kids = Trace.children root in
    Alcotest.(check int) "two iteration children" 2 (List.length kids);
    Alcotest.(check (list string)) "children in order" [ "bisect"; "bisect" ]
      (List.map Trace.name kids);
    Alcotest.(check (option string)) "duplicate attr: last write wins" (Some "2b")
      (Trace.attr (List.nth kids 1) "iter");
    Alcotest.(check int) "find_all sees the subtree" 2 (List.length (Trace.find_all root "bisect"))
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_trace_children_from_domains () =
  let tr = Trace.create () in
  let pool = Pool.create ~workers:3 () in
  let n = 32 in
  Trace.with_span tr "query.accurate" (fun root ->
      Pool.run pool ~n (fun i ->
          Trace.with_child tr ~parent:root "probe" (fun p ->
              Trace.add_attr tr p "partition" (string_of_int i))));
  Pool.shutdown pool;
  match Trace.roots tr with
  | [ root ] ->
    Alcotest.(check int) "every domain's child attached" n (List.length (Trace.children root));
    let parts =
      List.filter_map (fun s -> Trace.attr s "partition") (Trace.children root)
      |> List.map int_of_string |> List.sort_uniq compare
    in
    Alcotest.(check int) "all partitions distinct" n (List.length parts)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_trace_cap_and_clear () =
  let tr = Trace.create ~max_spans:2 () in
  for i = 1 to 5 do
    Trace.with_span tr (Printf.sprintf "span%d" i) (fun _ -> ())
  done;
  Alcotest.(check int) "cap keeps the first max_spans" 2 (List.length (Trace.roots tr));
  Alcotest.(check int) "overflow counted as dropped" 3 (Trace.dropped tr);
  Trace.clear tr;
  Alcotest.(check int) "clear empties the roots" 0 (List.length (Trace.roots tr));
  (* After clear the budget is back. *)
  Trace.with_span tr "fresh" (fun _ -> ());
  Alcotest.(check (list string)) "recording resumes" [ "fresh" ]
    (List.map Trace.name (Trace.roots tr))

(* --- Io_stats: registry integration and torn-read-freedom ---------------- *)

let test_io_stats_registry () =
  let reg = Metrics.create () in
  let a = Io_stats.create ~registry:reg () in
  Io_stats.note_read a 0;
  Io_stats.note_read a 1 (* sequential *);
  Io_stats.note_read a 10 (* random *);
  Io_stats.note_write a 11;
  Alcotest.(check (option int)) "reads exported by name" (Some 3)
    (Metrics.counter_value reg "hsq_io_reads_total");
  (* addr 0 (first read: random), addr 1 (sequential), addr 10 (random) *)
  Alcotest.(check (option int)) "seq/rand split exported" (Some 2)
    (Metrics.counter_value reg "hsq_io_rand_reads_total");
  (* A second stats object on the same registry shares the counters:
     aggregate accounting, as documented. *)
  let b = Io_stats.create ~registry:reg () in
  Io_stats.note_write b 0;
  Alcotest.(check int) "shared registry aggregates" 2 (Io_stats.snapshot a).Io_stats.writes;
  Io_stats.reset a;
  Alcotest.(check (option int)) "reset zeroes the exported counter" (Some 0)
    (Metrics.counter_value reg "hsq_io_reads_total")

let test_io_stats_torn_read_freedom () =
  let stats = Io_stats.create () in
  let writers = 3 and per_writer = 30_000 in
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  (* A reader domain snapshots as fast as it can while the writers note
     reads; every snapshot must satisfy reads = seq + rand. *)
  let reader =
    Domain.spawn (fun () ->
        let n = ref 0 in
        while not (Atomic.get stop) do
          let s = Io_stats.snapshot stats in
          if s.Io_stats.reads <> s.Io_stats.seq_reads + s.Io_stats.rand_reads then
            Atomic.incr torn;
          incr n
        done;
        !n)
  in
  let doms =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            for i = 1 to per_writer do
              Io_stats.note_read stats ((w * per_writer) + i)
            done))
  in
  List.iter Domain.join doms;
  Atomic.set stop true;
  let snapshots_taken = Domain.join reader in
  Alcotest.(check int) "no torn snapshot observed" 0 (Atomic.get torn);
  Alcotest.(check bool) "reader actually raced the writers" true (snapshots_taken > 0);
  let s = Io_stats.snapshot stats in
  Alcotest.(check int) "total reads exact" (writers * per_writer) s.Io_stats.reads;
  Alcotest.(check int) "split still consistent at rest" s.Io_stats.reads
    (s.Io_stats.seq_reads + s.Io_stats.rand_reads)

(* Process-level pull gauges: present, live, and idempotent to
   re-register from multiple entry points. *)
let test_process_gauges () =
  let reg = Metrics.create () in
  Hsq_obs.Process.register reg;
  Hsq_obs.Process.register reg;
  (* second registration must not raise or duplicate *)
  Alcotest.(check (option (float 0.0))) "build info is the constant 1" (Some 1.0)
    (Metrics.gauge_value reg "hsq_build_info");
  (match Metrics.gauge_value reg "hsq_uptime_seconds" with
  | Some up -> Alcotest.(check bool) "uptime non-negative" true (up >= 0.0)
  | None -> Alcotest.fail "no uptime gauge");
  (match Metrics.gauge_value reg "hsq_gc_heap_words" with
  | Some w -> Alcotest.(check bool) "heap words positive" true (w > 0.0)
  | None -> Alcotest.fail "no heap gauge");
  (* live, not sampled-at-registration: allocate and expect growth *)
  (match Metrics.gauge_value reg "hsq_gc_major_words" with
  | None -> Alcotest.fail "no major-words gauge"
  | Some before ->
    let junk = Array.init 200_000 (fun i -> string_of_int i) in
    Gc.minor ();
    ignore (Sys.opaque_identity junk);
    (match Metrics.gauge_value reg "hsq_gc_major_words" with
    | Some after -> Alcotest.(check bool) "major words advanced" true (after > before)
    | None -> Alcotest.fail "gauge vanished"));
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " listed") true (List.mem name (Metrics.names reg)))
    [ "hsq_uptime_seconds"; "hsq_build_info"; "hsq_gc_minor_collections" ]

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "gauge + pull metrics" `Quick test_gauge_basics;
          Alcotest.test_case "histogram closed-open buckets" `Quick test_histogram_boundaries;
          Alcotest.test_case "exact sums under domains" `Quick test_concurrent_exactness;
          Alcotest.test_case "process gauges" `Quick test_process_gauges;
          Alcotest.test_case "exporters stable and sorted" `Quick
            test_exporters_stable_and_sorted;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting and attrs" `Quick test_trace_nesting;
          Alcotest.test_case "children from pool domains" `Quick
            test_trace_children_from_domains;
          Alcotest.test_case "max_spans cap and clear" `Quick test_trace_cap_and_clear;
        ] );
      ( "io_stats",
        [
          Alcotest.test_case "registry-backed counters" `Quick test_io_stats_registry;
          Alcotest.test_case "torn-read-freedom under domains" `Quick
            test_io_stats_torn_read_freedom;
        ] );
    ]
