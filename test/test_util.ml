(* Tests for hsq_util: PRNGs, sorted-array primitives, statistics. *)

open Hsq_util

let test_splitmix_deterministic () =
  let a = Splitmix.create 42 and b = Splitmix.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Splitmix.next a) (Splitmix.next b)
  done

let test_splitmix_seeds_differ () =
  let a = Splitmix.create 1 and b = Splitmix.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Splitmix.next a = Splitmix.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_splitmix_copy () =
  let a = Splitmix.create 7 in
  ignore (Splitmix.next a);
  let b = Splitmix.copy a in
  Alcotest.(check int) "copies agree" (Splitmix.next a) (Splitmix.next b)

let test_splitmix_int_bounds () =
  let a = Splitmix.create 3 in
  for _ = 1 to 1000 do
    let v = Splitmix.int a 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Splitmix.int a 0))

let test_splitmix_float_range () =
  let a = Splitmix.create 11 in
  for _ = 1 to 1000 do
    let f = Splitmix.float a in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_xoshiro_deterministic () =
  let a = Xoshiro.create 42 and b = Xoshiro.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Xoshiro.next a) (Xoshiro.next b)
  done

let test_xoshiro_gaussian_moments () =
  let rng = Xoshiro.create 5 in
  let n = 200_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let g = Xoshiro.gaussian rng in
    sum := !sum +. g;
    sumsq := !sumsq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (abs_float mean < 0.02);
  Alcotest.(check bool) "variance near 1" true (abs_float (var -. 1.0) < 0.05)

let test_xoshiro_copy_independent () =
  let a = Xoshiro.create 9 in
  ignore (Xoshiro.gaussian a);
  (* spare deviate cached *)
  let b = Xoshiro.copy a in
  Alcotest.(check (float 0.0)) "copy shares spare" (Xoshiro.gaussian a) (Xoshiro.gaussian b)

let test_sorted_rank_basics () =
  let a = [| 1; 3; 3; 5; 9 |] in
  Alcotest.(check int) "rank below min" 0 (Sorted.rank a 0);
  Alcotest.(check int) "rank of min" 1 (Sorted.rank a 1);
  Alcotest.(check int) "rank mid dup" 3 (Sorted.rank a 3);
  Alcotest.(check int) "rank between" 3 (Sorted.rank a 4);
  Alcotest.(check int) "rank of max" 5 (Sorted.rank a 9);
  Alcotest.(check int) "rank above max" 5 (Sorted.rank a 100);
  Alcotest.(check int) "strict below dup" 1 (Sorted.rank_strict a 3);
  Alcotest.(check int) "strict above all" 5 (Sorted.rank_strict a 100)

let test_sorted_select () =
  let a = [| 2; 4; 4; 8 |] in
  Alcotest.(check int) "select 1" 2 (Sorted.select a 1);
  Alcotest.(check int) "select 2" 4 (Sorted.select a 2);
  Alcotest.(check int) "select 4" 8 (Sorted.select a 4);
  Alcotest.(check int) "select clamps low" 2 (Sorted.select a 0);
  Alcotest.(check int) "select clamps high" 8 (Sorted.select a 99)

let test_sorted_quantile_definition () =
  (* Definition 1: smallest element whose rank >= phi * n. *)
  let a = Array.init 100 (fun i -> i + 1) in
  Alcotest.(check int) "median" 50 (Sorted.quantile a 0.5);
  Alcotest.(check int) "p99" 99 (Sorted.quantile a 0.99);
  Alcotest.(check int) "p100" 100 (Sorted.quantile a 1.0);
  Alcotest.(check int) "p001 -> first" 1 (Sorted.quantile a 0.001)

let test_sorted_empty_raises () =
  Alcotest.check_raises "select empty" (Invalid_argument "Sorted.select: empty array") (fun () ->
      ignore (Sorted.select [||] 1));
  Alcotest.check_raises "quantile bad phi"
    (Invalid_argument "Sorted.quantile: phi not in (0,1]") (fun () ->
      ignore (Sorted.quantile [| 1 |] 0.0))

let test_sorted_merge () =
  let m = Sorted.merge [| 1; 4; 6 |] [| 2; 4; 9 |] in
  Alcotest.(check (array int)) "merged" [| 1; 2; 4; 4; 6; 9 |] m;
  Alcotest.(check (array int)) "left empty" [| 5 |] (Sorted.merge [||] [| 5 |]);
  Alcotest.(check (array int)) "right empty" [| 5 |] (Sorted.merge [| 5 |] [||])

let test_stats_summary () =
  let s = Stats.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 s.Stats.stddev

let test_stats_median () =
  Alcotest.(check (float 1e-9)) "odd" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.median: empty list") (fun () ->
      ignore (Stats.median []))

(* Property: Sorted.rank agrees with a naive count on random arrays. *)
let prop_rank_agrees_with_count =
  QCheck.Test.make ~name:"Sorted.rank = naive count" ~count:500
    QCheck.(pair (list small_int) small_int)
    (fun (l, v) ->
      let a = Array.of_list (List.sort compare l) in
      let naive = List.length (List.filter (fun x -> x <= v) l) in
      Sorted.rank a v = naive)

let prop_merge_sorted =
  QCheck.Test.make ~name:"Sorted.merge is sorted and complete" ~count:500
    QCheck.(pair (list small_int) (list small_int))
    (fun (l1, l2) ->
      let a = Array.of_list (List.sort compare l1)
      and b = Array.of_list (List.sort compare l2) in
      let m = Sorted.merge a b in
      Sorted.is_sorted m
      && List.sort compare (Array.to_list m) = List.sort compare (l1 @ l2))

let prop_select_rank_inverse =
  QCheck.Test.make ~name:"select r has rank >= r; predecessor does not" ~count:500
    QCheck.(pair (list_of_size Gen.(1 -- 50) small_int) (int_bound 49))
    (fun (l, r0) ->
      let a = Array.of_list (List.sort compare l) in
      let n = Array.length a in
      let r = 1 + (r0 mod n) in
      let v = Sorted.select a r in
      Sorted.rank a v >= r && (v <= a.(0) || Sorted.rank a (v - 1) < r))


let test_parallel_map_order () =
  let input = Array.init 1000 (fun i -> i) in
  let out = Parallel.map ~domains:4 (fun x -> x * 2) input in
  Alcotest.(check (array int)) "order preserved" (Array.map (fun x -> x * 2) input) out;
  Alcotest.(check (array int)) "empty" [||] (Parallel.map ~domains:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "single domain" [| 2 |] (Parallel.map ~domains:1 (fun x -> x * 2) [| 1 |])

let test_parallel_sort_matches_sequential () =
  let rng = Xoshiro.create 99 in
  List.iter
    (fun n ->
      let data = Array.init n (fun _ -> Xoshiro.int rng 1_000_000) in
      let expected = Array.copy data in
      Array.sort compare expected;
      let got = Array.copy data in
      Parallel.sort ~domains:4 got;
      Alcotest.(check (array int)) (Printf.sprintf "n=%d" n) expected got)
    [ 0; 1; 2; 100; 4096; 50_000 ]

(* Many back-to-back rounds with a distinct closure per round.  A
   worker that woke late used to claim the next round's indices while
   still holding the previous round's closure (or the parked no-op),
   leaving [None] slots in Pool.map or mixing rounds' results; the
   epoch-stamped claim makes every round's output exact. *)
let test_pool_rounds_isolated () =
  let pool = Parallel.Pool.create ~workers:3 () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      for round = 0 to 999 do
        let n = 1 + (round mod 7) in
        let input = Array.init n (fun i -> i) in
        let expected = Array.init n (fun i -> (round * 1000) + i) in
        let got = Parallel.Pool.map pool (fun i -> (round * 1000) + i) input in
        Alcotest.(check (array int)) (Printf.sprintf "round %d" round) expected got
      done)

(* A failing item stops further claims, re-raises the first exception,
   and leaves the pool usable for subsequent rounds. *)
let test_pool_failure_stops_and_recovers () =
  let pool = Parallel.Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      let ran = Array.make 64 false in
      (try
         Parallel.Pool.run pool ~n:64 (fun i ->
             if i = 0 then failwith "boom"
             else begin
               (* ~ms of spin: item 0 fails (and stops claiming) long
                  before any lane gets through a second item. *)
               for _ = 1 to 1_000_000 do
                 ignore (Sys.opaque_identity i)
               done;
               ran.(i) <- true
             end);
         Alcotest.fail "expected Failure"
       with Failure m -> Alcotest.(check string) "first exception" "boom" m);
      (* Without fail-fast claiming, all 63 remaining items would run;
         with it, only the few already in flight do (generous margin
         for scheduling noise). *)
      let survivors = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 ran in
      Alcotest.(check bool) "later items skipped" true (survivors <= 16);
      let got = Parallel.Pool.map pool (fun x -> x + 1) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "pool reusable after failure" [| 2; 3; 4 |] got)

(* Cooperative cancellation (the query deadline's mechanism): once the
   check fires no further items are claimed, the round raises
   [Cancelled], and the pool is reusable. *)
let test_pool_cancellation () =
  let pool = Parallel.Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      let cancelled = Atomic.make false in
      let ran = Atomic.make 0 in
      (try
         Parallel.Pool.run pool
           ~cancel:(fun () -> Atomic.get cancelled)
           ~n:64
           (fun i ->
             Atomic.incr ran;
             if i = 0 then Atomic.set cancelled true;
             (* ~ms of spin so the flag is seen before the queue drains *)
             for _ = 1 to 1_000_000 do
               ignore (Sys.opaque_identity i)
             done);
         Alcotest.fail "expected Cancelled"
       with Parallel.Pool.Cancelled -> ());
      Alcotest.(check bool) "later items never claimed" true (Atomic.get ran < 64);
      (* a check that is already true cancels the round up front *)
      (try
         ignore
           (Parallel.Pool.map ~cancel:(fun () -> true) pool (fun i -> i) (Array.init 8 Fun.id));
         Alcotest.fail "expected Cancelled from map"
       with Parallel.Pool.Cancelled -> ());
      let got = Parallel.Pool.map pool (fun x -> 2 * x) (Array.init 5 Fun.id) in
      Alcotest.(check (array int)) "pool reusable after cancellation" [| 0; 2; 4; 6; 8 |] got)

let prop_parallel_sort =
  QCheck.Test.make ~name:"parallel sort = sequential sort" ~count:50
    QCheck.(pair (list small_int) (int_range 1 6))
    (fun (l, domains) ->
      let a = Array.of_list l in
      let b = Array.of_list l in
      Array.sort compare a;
      Parallel.sort ~domains b;
      a = b)

let () =
  Alcotest.run "util"
    [
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_splitmix_seeds_differ;
          Alcotest.test_case "copy" `Quick test_splitmix_copy;
          Alcotest.test_case "int bounds" `Quick test_splitmix_int_bounds;
          Alcotest.test_case "float range" `Quick test_splitmix_float_range;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "gaussian moments" `Slow test_xoshiro_gaussian_moments;
          Alcotest.test_case "copy keeps spare" `Quick test_xoshiro_copy_independent;
        ] );
      ( "sorted",
        [
          Alcotest.test_case "rank basics" `Quick test_sorted_rank_basics;
          Alcotest.test_case "select" `Quick test_sorted_select;
          Alcotest.test_case "quantile (Definition 1)" `Quick test_sorted_quantile_definition;
          Alcotest.test_case "empty raises" `Quick test_sorted_empty_raises;
          Alcotest.test_case "merge" `Quick test_sorted_merge;
          QCheck_alcotest.to_alcotest prop_rank_agrees_with_count;
          QCheck_alcotest.to_alcotest prop_merge_sorted;
          QCheck_alcotest.to_alcotest prop_select_rank_inverse;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "map order" `Quick test_parallel_map_order;
          Alcotest.test_case "sort matches sequential" `Quick test_parallel_sort_matches_sequential;
          Alcotest.test_case "pool rounds isolated" `Quick test_pool_rounds_isolated;
          Alcotest.test_case "pool failure stops and recovers" `Quick
            test_pool_failure_stops_and_recovers;
          Alcotest.test_case "pool cooperative cancellation" `Quick test_pool_cancellation;
          QCheck_alcotest.to_alcotest prop_parallel_sort;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "median" `Quick test_stats_median;
        ] );
    ]
