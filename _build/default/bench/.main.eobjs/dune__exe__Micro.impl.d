bench/micro.ml: Analyze Bechamel Benchmark Harness Hashtbl Hsq Hsq_sketch Hsq_util Instance List Measure Printf Staged Test Time Toolkit
