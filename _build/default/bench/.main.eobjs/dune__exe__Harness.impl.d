bench/harness.ml: Array Hsq Hsq_hist Hsq_storage Hsq_util Hsq_workload List Option Printf String Unix
