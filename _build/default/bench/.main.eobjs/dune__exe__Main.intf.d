bench/main.mli:
