bench/main.ml: Arg Figures Harness List Micro Printf String Unix
