bench/figures.ml: Array Domain Harness Hsq Hsq_hist Hsq_sketch Hsq_storage Hsq_util Hsq_workload List Option Printf Unix
