(* Shared infrastructure for the figure benches.

   A [workload] is a fully materialised instance of one Section-3.1
   dataset: [steps] archived batches plus one live-stream batch, with an
   exact oracle over everything.  Workloads are generated once per
   (dataset, seed) and reused across every configuration cell of a
   figure, exactly as the paper reuses one dataset across sweeps. *)

module E = Hsq.Engine

type scale = {
  steps : int; (* archived time steps (T) *)
  step_size : int; (* elements per batch *)
  runs : int; (* independent seeds; medians are reported *)
  block_size : int; (* elements per simulated disk block *)
  seed : int;
}

let default_scale = { steps = 100; step_size = 10_000; runs = 3; block_size = 256; seed = 0xBEEF }

(* Quantiles probed by the error figures. *)
let phis = [ 0.25; 0.5; 0.75; 0.95; 0.99 ]

type workload = {
  name : string;
  universe_bits : int;
  batches : int array array; (* steps batches *)
  tail : int array; (* the live stream at query time *)
  oracle : Hsq_workload.Oracle.t;
  total : int;
}

let load_workload ?steps ?step_size ~scale ~dataset () =
  let steps = Option.value steps ~default:scale.steps in
  let step_size = Option.value step_size ~default:scale.step_size in
  let ds = Hsq_workload.Datasets.by_name ~seed:scale.seed dataset in
  let oracle = Hsq_workload.Oracle.create () in
  let batches =
    Array.init steps (fun _ ->
        let b = Hsq_workload.Datasets.next_batch ds step_size in
        Hsq_workload.Oracle.add_batch oracle b;
        b)
  in
  let tail = Hsq_workload.Datasets.next_batch ds step_size in
  Hsq_workload.Oracle.add_batch oracle tail;
  {
    name = dataset;
    universe_bits = Hsq_workload.Datasets.universe_bits ds;
    batches;
    tail;
    oracle;
    total = (steps * step_size) + Array.length tail;
  }

(* Feed a workload into a fresh engine; returns the per-step update
   reports.  After this the engine holds all batches archived and the
   tail as its live stream. *)
let build_engine ~config w =
  let eng = E.create config in
  let reports = Array.map (fun batch -> E.ingest_batch eng batch) w.batches in
  Array.iter (E.observe eng) w.tail;
  (eng, reports)

(* Mean relative error over the probe quantiles (Section 3.1 metric). *)
let accurate_error eng w =
  let n = E.total_size eng in
  let errs =
    List.map
      (fun phi ->
        let r = int_of_float (ceil (phi *. float_of_int n)) in
        let v, _ = E.accurate eng ~rank:r in
        float_of_int (Hsq_workload.Oracle.rank_error w.oracle ~rank:r ~value:v)
        /. (phi *. float_of_int n))
      phis
  in
  Hsq_util.Stats.mean errs

let quick_error eng w =
  let n = E.total_size eng in
  let errs =
    List.map
      (fun phi ->
        let r = int_of_float (ceil (phi *. float_of_int n)) in
        let v = E.quick eng ~rank:r in
        float_of_int (Hsq_workload.Oracle.rank_error w.oracle ~rank:r ~value:v)
        /. (phi *. float_of_int n))
      phis
  in
  Hsq_util.Stats.mean errs

(* Pure-streaming baseline over the same workload. *)
let streaming_error ~algorithm ~words w =
  let b =
    Hsq.Baselines.Streaming.create ~universe_bits:w.universe_bits ~algorithm ~words
      ~kappa:10 ~block_size:256 ()
  in
  Array.iter
    (fun batch ->
      Array.iter (Hsq.Baselines.Streaming.observe b) batch;
      ignore (Hsq.Baselines.Streaming.end_time_step b))
    w.batches;
  Array.iter (Hsq.Baselines.Streaming.observe b) w.tail;
  let n = Hsq.Baselines.Streaming.count b in
  let errs =
    List.map
      (fun phi ->
        let r = int_of_float (ceil (phi *. float_of_int n)) in
        let v = Hsq.Baselines.Streaming.query_rank b r in
        float_of_int (Hsq_workload.Oracle.rank_error w.oracle ~rank:r ~value:v)
        /. (phi *. float_of_int n))
      phis
  in
  Hsq_util.Stats.mean errs

(* Average accurate-query cost: wall seconds and disk accesses. *)
let query_cost ?(reps = 3) eng =
  let n = E.total_size eng in
  let t0 = Unix.gettimeofday () in
  let ios = ref 0 and count = ref 0 in
  for _ = 1 to reps do
    List.iter
      (fun phi ->
        let r = int_of_float (ceil (phi *. float_of_int n)) in
        let _, report = E.accurate eng ~rank:r in
        ios := !ios + Hsq_storage.Io_stats.total report.E.io;
        incr count)
      phis
  done;
  let seconds = (Unix.gettimeofday () -. t0) /. float_of_int !count in
  (seconds, float_of_int !ios /. float_of_int !count)

let quick_query_seconds ?(reps = 3) eng =
  let n = E.total_size eng in
  let t0 = Unix.gettimeofday () in
  let count = ref 0 in
  for _ = 1 to reps do
    List.iter
      (fun phi ->
        let r = int_of_float (ceil (phi *. float_of_int n)) in
        ignore (E.quick eng ~rank:r);
        incr count)
      phis
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int !count

(* Aggregate per-step update reports. *)
type update_summary = {
  mean_seconds : float;
  mean_load : float;
  mean_sort : float;
  mean_merge : float;
  mean_summary : float;
  mean_io : float;
  mean_merge_io : float;
}

let summarize_updates reports =
  let n = float_of_int (Array.length reports) in
  let sum f = Array.fold_left (fun acc r -> acc +. f r) 0.0 reports /. n in
  let open Hsq_hist.Level_index in
  {
    mean_seconds =
      sum (fun r -> r.sort_seconds +. r.load_seconds +. r.merge_seconds +. r.summary_seconds);
    mean_load = sum (fun r -> r.load_seconds);
    mean_sort = sum (fun r -> r.sort_seconds);
    mean_merge = sum (fun r -> r.merge_seconds);
    mean_summary = sum (fun r -> r.summary_seconds);
    mean_io = sum (fun r -> float_of_int (Hsq_storage.Io_stats.total r.io_total));
    mean_merge_io = sum (fun r -> float_of_int (Hsq_storage.Io_stats.total r.io_merge));
  }

(* Memory budgets mirroring the paper's 100-500 MB for ~100 GB of data:
   0.1% to 0.5% of N, in words. *)
let memory_budgets w =
  List.sort_uniq compare
    (List.map
       (fun f -> max 512 (int_of_float (f *. float_of_int w.total)))
       [ 0.001; 0.002; 0.003; 0.004; 0.005 ])

let median_over_seeds ~scale f =
  let vals = List.init scale.runs (fun i -> f { scale with seed = scale.seed + (7919 * i) }) in
  Hsq_util.Stats.median vals

(* Table printing helpers: plain aligned columns, one row per sweep
   point, matching the series in the paper's plots. *)
let print_header title = Printf.printf "\n=== %s ===\n%!" title

let print_row cells = print_endline (String.concat "  " cells)

let fmt_e v = Printf.sprintf "%12.3e" v
let fmt_f v = Printf.sprintf "%12.4f" v
let fmt_i v = Printf.sprintf "%12d" v
