(* Quickstart: the whole public API in ~40 lines.

     dune exec examples/quickstart.exe

   An engine archives a batch of data per "time step" (Algorithm 3),
   absorbs a live stream in between (Algorithm 4), and answers quantile
   queries over the union at any moment (Algorithms 5-8). *)

let () =
  (* epsilon = 0.01: quantile queries answered within 1% of the live
     stream's size in rank — NOT 1% of the whole dataset.  kappa = 10:
     at most 10 on-disk partitions per level. *)
  let config = Hsq.Config.make ~kappa:10 (Hsq.Config.Epsilon 0.01) in
  let engine = Hsq.Engine.create config in

  (* Archive 30 days of data, 50k measurements per day. *)
  let rng = Hsq_util.Xoshiro.create 2024 in
  for _day = 1 to 30 do
    for _ = 1 to 50_000 do
      Hsq.Engine.observe engine (100_000 + Hsq_util.Xoshiro.int rng 900_000)
    done;
    (* End of day: the batch is sorted into the warehouse and the
       stream summary resets. *)
    ignore (Hsq.Engine.end_time_step engine)
  done;

  (* Today's data is still streaming in. *)
  for _ = 1 to 20_000 do
    Hsq.Engine.observe engine (100_000 + Hsq_util.Xoshiro.int rng 900_000)
  done;

  Printf.printf "dataset: %d archived + %d streaming = %d total\n"
    (Hsq.Engine.hist_size engine)
    (Hsq.Engine.stream_size engine)
    (Hsq.Engine.total_size engine);
  Printf.printf "summary memory: %d words for %d elements (%.4f%%)\n\n"
    (Hsq.Engine.memory_words engine)
    (Hsq.Engine.total_size engine)
    (100.0
    *. float_of_int (Hsq.Engine.memory_words engine)
    /. float_of_int (Hsq.Engine.total_size engine));

  (* Accurate quantiles: a handful of disk reads, error <= eps * m. *)
  List.iter
    (fun phi ->
      let value, report = Hsq.Engine.quantile engine phi in
      Printf.printf "p%-4g = %-8d  (%d disk accesses)\n" (100.0 *. phi) value
        (Hsq_storage.Io_stats.total report.Hsq.Engine.io))
    [ 0.5; 0.95; 0.99 ];

  (* Quick quantiles: zero disk accesses, coarser answer. *)
  let quick_median = Hsq.Engine.quick_quantile engine 0.5 in
  Printf.printf "\nquick median (no disk I/O): %d\n" quick_median;

  (* Windowed query: only partition-aligned windows are answerable, so
     ask the engine which ones exist and use the closest to a week. *)
  let windows = Hsq.Engine.window_sizes engine in
  Printf.printf "answerable windows (days): %s\n"
    (String.concat ", " (List.map string_of_int windows));
  let week = match List.find_opt (fun w -> w >= 7) windows with Some w -> w | None -> 1 in
  match Hsq.Engine.quantile_window engine ~window:week 0.5 with
  | Ok (v, _) -> Printf.printf "median over the last %d days + today: %d\n" week v
  | Error (Hsq.Engine.Window_not_aligned ws) ->
    Printf.printf "window unavailable; try one of: %s\n"
      (String.concat ", " (List.map string_of_int ws))
