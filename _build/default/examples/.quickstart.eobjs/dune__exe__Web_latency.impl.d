examples/web_latency.ml: Hsq Hsq_storage Hsq_util Hsq_workload List Printf
