examples/top_talkers.ml: Filename Hsq Hsq_storage Hsq_util Hsq_workload List Printf Sys
