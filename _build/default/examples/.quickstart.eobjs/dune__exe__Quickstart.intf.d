examples/quickstart.mli:
