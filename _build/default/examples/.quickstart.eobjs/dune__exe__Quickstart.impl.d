examples/quickstart.ml: Hsq Hsq_storage Hsq_util List Printf String
