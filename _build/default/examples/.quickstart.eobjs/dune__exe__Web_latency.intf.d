examples/web_latency.mli:
