examples/network_monitor.ml: Array Hsq Hsq_util Hsq_workload List Printf String
