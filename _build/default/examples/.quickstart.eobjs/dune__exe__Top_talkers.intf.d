examples/top_talkers.mli:
