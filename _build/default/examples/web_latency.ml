(* Web-server latency monitoring — the paper's introductory use case
   (Section 1, citing Fiedler & Plattner's latency-quantile QoS work).

     dune exec examples/web_latency.exe

   A service archives one batch of request latencies per hour.  The
   median describes typical performance and p95/p99 the tail that SLOs
   are written against.  Hour 19 contains an incident (a slow dependency
   multiplies tail latencies).  We track quantiles over the union of
   all archived hours plus the live traffic, compare against an exact
   oracle, and show the incident moving p99 while leaving the median
   almost untouched. *)

let requests_per_hour = 40_000

(* Log-normal latencies (microseconds): median ~20ms, natural tail. *)
let sample_latency rng ~incident =
  let mu = log 20_000.0 and sigma = 0.55 in
  let v = Hsq_workload.Distribution.lognormal ~mu ~sigma rng in
  let v =
    (* During the incident, 20% of requests hit the slow dependency. *)
    if incident && Hsq_util.Xoshiro.float rng < 0.2 then v *. 8.0 else v
  in
  int_of_float v

let () =
  let rng = Hsq_util.Xoshiro.create 7_777 in
  let config = Hsq.Config.make ~kappa:6 ~steps_hint:24 (Hsq.Config.Epsilon 0.005) in
  let engine = Hsq.Engine.create config in
  let oracle = Hsq_workload.Oracle.create () in
  Printf.printf "hour     p50(ms)   p95(ms)   p99(ms)   disk-IOs   exact-p99(ms)\n";
  for hour = 1 to 24 do
    let incident = hour = 19 in
    for _ = 1 to requests_per_hour do
      let v = sample_latency rng ~incident in
      Hsq.Engine.observe engine v;
      Hsq_workload.Oracle.add oracle v
    done;
    (* Query BEFORE archiving: the last hour is pure streaming data,
       which is exactly the regime the paper optimises. *)
    let q phi = fst (Hsq.Engine.quantile engine phi) in
    let _, io_report = Hsq.Engine.quantile engine 0.99 in
    Printf.printf "%4d  %9.1f %9.1f %9.1f %10d %15.1f%s\n" hour
      (float_of_int (q 0.5) /. 1000.0)
      (float_of_int (q 0.95) /. 1000.0)
      (float_of_int (q 0.99) /. 1000.0)
      (Hsq_storage.Io_stats.total io_report.Hsq.Engine.io)
      (float_of_int (Hsq_workload.Oracle.quantile oracle 0.99) /. 1000.0)
      (if incident then "   <- incident hour" else "");
    ignore (Hsq.Engine.end_time_step engine)
  done;
  (* Final accuracy audit across the whole day. *)
  print_newline ();
  List.iter
    (fun phi ->
      let v, _ = Hsq.Engine.quantile engine phi in
      Printf.printf "phi=%.2f: answered %d, exact %d, relative rank error %.2e\n" phi v
        (Hsq_workload.Oracle.quantile oracle phi)
        (Hsq_workload.Oracle.relative_error oracle ~phi ~value:v))
    [ 0.5; 0.9; 0.95; 0.99; 0.999 ];
  Printf.printf "\nsummary memory: %d words vs %d elements ingested\n"
    (Hsq.Engine.memory_words engine)
    (Hsq.Engine.total_size engine)
