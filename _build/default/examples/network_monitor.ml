(* Network monitoring with windowed queries — the paper's motivating
   "intrusion detection needs streaming + historical context" scenario
   (Section 1) and its windowed-query extension (Section 2.4).

     dune exec examples/network_monitor.exe

   A router archives one time step of flow records per period.  Each
   record is a source-destination pair packed into one integer, so a
   quantile over the keys is a point on the traffic-matrix distribution:
   if the live distribution's quartiles drift far from the historical
   ones, the popular host mix has shifted (e.g. a scan or a hijacked
   prefix).  Windowed queries compare "all history" against "recent
   window" without touching non-window partitions. *)

let flows_per_step = 30_000

let () =
  let config = Hsq.Config.make ~kappa:3 ~steps_hint:30 (Hsq.Config.Epsilon 0.01) in
  let engine = Hsq.Engine.create config in
  (* Normal traffic for 26 steps... *)
  let normal_traffic = Hsq_workload.Datasets.network ~seed:42 in
  for _ = 1 to 26 do
    ignore (Hsq.Engine.ingest_batch engine (Hsq_workload.Datasets.next_batch normal_traffic flows_per_step))
  done;
  (* ...then an anomaly: a previously cold /24 becomes the top talker
     (simulated by biasing keys into a narrow high range). *)
  let rng = Hsq_util.Xoshiro.create 99 in
  for _ = 1 to 4 do
    let batch =
      Array.init flows_per_step (fun _ ->
          if Hsq_util.Xoshiro.float rng < 0.6 then
            (* hot /24: hosts 3840..3871 talking to anyone *)
            ((3840 + Hsq_util.Xoshiro.int rng 32) * 4096) + Hsq_util.Xoshiro.int rng 4096
          else
            let b = Hsq_workload.Datasets.next_batch normal_traffic 1 in
            b.(0))
    in
    ignore (Hsq.Engine.ingest_batch engine batch)
  done;
  (* Live stream: the anomaly continues. *)
  for _ = 1 to 10_000 do
    Hsq.Engine.observe engine
      (((3840 + Hsq_util.Xoshiro.int rng 32) * 4096) + Hsq_util.Xoshiro.int rng 4096)
  done;

  Printf.printf "archived %d steps (%d flows), %d live flows\n"
    (Hsq.Engine.time_steps engine) (Hsq.Engine.hist_size engine)
    (Hsq.Engine.stream_size engine);
  Printf.printf "answerable windows (steps): %s\n\n"
    (String.concat ", " (List.map string_of_int (Hsq.Engine.window_sizes engine)));

  let describe label quartiles =
    Printf.printf "%-22s q1=%-10d median=%-10d q3=%-10d\n" label quartiles.(0) quartiles.(1)
      quartiles.(2)
  in
  let quartiles_all =
    Array.of_list
      (List.map (fun phi -> fst (Hsq.Engine.quantile engine phi)) [ 0.25; 0.5; 0.75 ])
  in
  describe "all history + live:" quartiles_all;

  (* Pick the smallest window >= 4 steps for the "recent" view. *)
  let window =
    match List.find_opt (fun w -> w >= 4) (Hsq.Engine.window_sizes engine) with
    | Some w -> w
    | None -> List.hd (List.rev (Hsq.Engine.window_sizes engine))
  in
  let quartiles_recent =
    Array.of_list
      (List.map
         (fun phi ->
           match Hsq.Engine.quantile_window engine ~window phi with
           | Ok (v, _) -> v
           | Error _ -> assert false)
         [ 0.25; 0.5; 0.75 ])
  in
  describe (Printf.sprintf "last %d steps + live:" window) quartiles_recent;

  (* A crude drift detector on the traffic-matrix quartiles. *)
  let drift =
    let rel a b = abs_float (float_of_int (a - b)) /. float_of_int (max 1 (abs b)) in
    (rel quartiles_recent.(1) quartiles_all.(1) +. rel quartiles_recent.(2) quartiles_all.(2))
    /. 2.0
  in
  Printf.printf "\nquartile drift (recent vs all-time): %.1f%%\n" (100.0 *. drift);
  if drift > 0.25 then
    print_endline "ALERT: recent traffic-matrix distribution diverges from history"
  else print_endline "traffic distribution stable"
