(** CKMS biased quantiles (Cormode, Korn, Muthukrishnan, Srivastava,
    ICDE 2005): a GK-style summary with a rank-dependent error budget,
    so tail quantiles (p99/p999 — the paper's latency-monitoring
    motivation) get proportionally finer error than the middle, at a
    fraction of the memory a uniform sketch would need.

    With [High_biased], a query at rank r is answered within
    ε·(n − r) + O(1); with [Low_biased], within ε·r + O(1); [Uniform]
    degenerates to plain GK. *)

type bias = Low_biased | High_biased | Uniform
type t

val create : ?bias:bias -> epsilon:float -> unit -> t
val insert : t -> int -> unit
val count : t -> int
val size : t -> int
val epsilon : t -> float
val bias : t -> bias
val memory_words : t -> int

(** Allowed rank error at rank [r] (f(r, n)/2 + 1). *)
val error_allowance : t -> int -> float

(** Value whose rank is within [error_allowance t r] of [r]. *)
val query_rank : t -> int -> int

(** φ-quantile of Definition 1. *)
val quantile : t -> float -> int

val error_bound : t -> float

(** Tuples as [(value, rmin, rmax)], for tests. *)
val dump : t -> (int * int * int) list

val sketch : (module Quantile_sketch.S with type t = t)
