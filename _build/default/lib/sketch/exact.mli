(** Exact quantiles over all inserted elements — the Θ(n)-memory oracle
    used by tests, and a reference implementation of the sketch
    interface. *)

type t

val create : unit -> t
val of_array : int array -> t
val insert : t -> int -> unit
val count : t -> int
val memory_words : t -> int
val error_bound : t -> float

(** Elements in sorted order (fresh array). *)
val sorted_view : t -> int array

(** Exact element of rank [r] (1-based, clamped). Raises on empty. *)
val query_rank : t -> int -> int

(** Exact rank(v). *)
val rank_of : t -> int -> int

(** Exact φ-quantile of Definition 1. *)
val quantile : t -> float -> int

val sketch : (module Quantile_sketch.S with type t = t)
