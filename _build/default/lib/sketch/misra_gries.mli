(** Misra–Gries frequent-items summary (1982).

    With [capacity] k over n items, estimates never overcount and
    undercount by at most n/(k+1) — the deterministic mirror image of
    {!Spacesaving}, used for cross-checks. *)

type t

val create : capacity:int -> t
val insert : t -> int -> unit
val count : t -> int
val size : t -> int
val memory_words : t -> int

(** Never above the true count; below it by at most n/(k+1). *)
val estimate : t -> int -> int

(** Tracked [(item, estimate)] pairs, estimate descending. *)
val entries : t -> (int * int) list

(** Maximum undercount n/(k+1). *)
val error_bound : t -> int
