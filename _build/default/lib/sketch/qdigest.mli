(** Q-Digest quantile sketch (Shrivastava et al., SenSys 2004) — the
    second pure-streaming baseline of the paper's experiments.

    Operates over a fixed universe [\[0, 2^bits)]; with compression
    factor [k], rank error is at most [bits/k · n] and the digest holds
    O(k) nodes. *)

type t

(** Raises [Invalid_argument] for [bits ∉ \[1, 61\]] or [k < 1]. *)
val create : bits:int -> k:int -> t

(** Pick [k] to fit a word budget (digest ≤ 3k nodes, 2 words each). *)
val create_capped : bits:int -> words:int -> t

(** Raises [Invalid_argument] if the value is outside the universe. *)
val insert : t -> int -> unit

val count : t -> int

(** Live tree nodes. *)
val size : t -> int

val memory_words : t -> int

(** ε = bits / k. *)
val error_bound : t -> float

val universe_bits : t -> int

(** Value whose rank approximates [r] within [bits/k · n]. *)
val query_rank : t -> int -> int

val rank_of : t -> int -> int
val sketch : (module Quantile_sketch.S with type t = t)
