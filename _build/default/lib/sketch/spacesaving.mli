(** SpaceSaving heavy-hitters sketch (Metwally et al., ICDT 2005).

    With [capacity] k over a stream of n items: estimates never
    undercount, overcount by at most n/k, and every item with true
    count > n/k is tracked. The stream side of the
    heavy-hitters-over-union extension. *)

type t

val create : capacity:int -> t
val insert : t -> int -> unit

(** Items processed so far. *)
val count : t -> int

val size : t -> int
val capacity : t -> int
val memory_words : t -> int

(** Tracked items as [(item, estimate, max_overestimation)], sorted by
    estimate descending. True count ∈ [estimate − error, estimate]. *)
val entries : t -> (int * int * int) list

(** [(estimate, error)] for any value; untracked values report the n/k
    upper bound. *)
val estimate : t -> int -> int * int

(** Tracked items whose estimate reaches [threshold] (a superset of
    the items whose true count does). *)
val candidates : t -> threshold:int -> int list

(** Current worst-case overestimation ⌈n/k⌉. *)
val error_bound : t -> int
