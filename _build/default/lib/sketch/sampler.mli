(** RANDOM / MRL-style randomized sampling quantile sketch.

    The paper's related-work section singles out MRL99 and the
    simplified RANDOM (Wang et al., SIGMOD 2013) as the strongest
    randomized streaming competitors; this module implements that
    family: weighted sample buffers collapsed by merging and evenly
    spaced weighted re-sampling. Guarantees are probabilistic, unlike
    {!Gk}. *)

type t

(** [create ?seed ~buffers ~buffer_size ()]. Raises [Invalid_argument]
    if [buffers < 2] or [buffer_size < 2]. *)
val create : ?seed:int -> buffers:int -> buffer_size:int -> unit -> t

(** Size the sketch (10 buffers) for a word budget. *)
val create_capped : ?seed:int -> words:int -> unit -> t

val insert : t -> int -> unit
val count : t -> int
val memory_words : t -> int

(** Heuristic expected-error parameter (1 / buffer_size). *)
val error_bound : t -> float

val query_rank : t -> int -> int
val rank_of : t -> int -> int
val sketch : (module Quantile_sketch.S with type t = t)
