lib/sketch/qdigest.ml: Array Hashtbl List Quantile_sketch
