lib/sketch/qdigest.mli: Quantile_sketch
