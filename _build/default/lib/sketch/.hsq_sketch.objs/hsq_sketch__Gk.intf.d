lib/sketch/gk.mli: Quantile_sketch
