lib/sketch/ckms.ml: Array Float List Quantile_sketch
