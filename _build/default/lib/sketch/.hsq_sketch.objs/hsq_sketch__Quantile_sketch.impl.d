lib/sketch/quantile_sketch.ml:
