lib/sketch/misra_gries.ml: Hashtbl List
