lib/sketch/ckms.mli: Quantile_sketch
