lib/sketch/spacesaving.mli:
