lib/sketch/sampler.mli: Quantile_sketch
