lib/sketch/spacesaving.ml: Hashtbl List
