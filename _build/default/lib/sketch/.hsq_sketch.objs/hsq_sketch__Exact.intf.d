lib/sketch/exact.mli: Quantile_sketch
