lib/sketch/sampler.ml: Array Hsq_util List Quantile_sketch
