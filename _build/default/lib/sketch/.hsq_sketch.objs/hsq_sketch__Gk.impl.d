lib/sketch/gk.ml: Array Float List Printf Quantile_sketch
