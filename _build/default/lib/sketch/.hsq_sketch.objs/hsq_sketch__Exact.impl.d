lib/sketch/exact.ml: Array Quantile_sketch
