lib/sketch/misra_gries.mli:
