(* CKMS biased quantiles [Cormode, Korn, Muthukrishnan, Srivastava,
   ICDE'05]: a GK-style summary whose error budget varies with rank, so
   tail quantiles (the p99/p999 latencies of the paper's introductory
   use case) get proportionally finer error than the middle of the
   distribution — at a fraction of the memory a uniform sketch would
   need for the same tail accuracy.

   The summary keeps value-sorted tuples (v, g, delta) like GK, but the
   invariant threshold is a function of the tuple's rank:

     g_i + delta_i <= f(rmin_i, n)

   with  f(r, n) = max(2*eps*r, 1)         for Low_biased  (fine small phi)
         f(r, n) = max(2*eps*(n-r), 1)     for High_biased (fine large phi)
         f(r, n) = 2*eps*n                 for Uniform     (plain GK)

   A query for rank r is answered within f(r, n)/2 + 1. *)

type bias = Low_biased | High_biased | Uniform

type tuple = { value : int; g : int; delta : int }

type t = {
  epsilon : float;
  bias : bias;
  mutable tuples : tuple array;
  mutable size : int;
  mutable n : int;
  mutable since_compress : int;
}

let dummy = { value = 0; g = 0; delta = 0 }

let create ?(bias = High_biased) ~epsilon () =
  if not (epsilon > 0.0 && epsilon < 1.0) then invalid_arg "Ckms.create: epsilon not in (0,1)";
  { epsilon; bias; tuples = Array.make 16 dummy; size = 0; n = 0; since_compress = 0 }

let count t = t.n
let size t = t.size
let epsilon t = t.epsilon
let bias t = t.bias
let memory_words t = 8 + (3 * t.size)

let invariant_threshold t r =
  let fr = float_of_int r and fn = float_of_int t.n in
  match t.bias with
  | Low_biased -> Float.max (2.0 *. t.epsilon *. fr) 1.0
  | High_biased -> Float.max (2.0 *. t.epsilon *. (fn -. fr)) 1.0
  | Uniform -> 2.0 *. t.epsilon *. fn

(* f is monotone in r for every bias, so its minimum over a rank span
   is attained at an endpoint; evaluating conservatively over the whole
   span keeps the invariant valid wherever the true rank falls. *)
let span_threshold t ~lo ~hi =
  Float.min (invariant_threshold t lo) (invariant_threshold t hi)

(* Allowed rank error when answering a query at rank r. *)
let error_allowance t r = (invariant_threshold t r /. 2.0) +. 1.0

let upper_bound t v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.tuples.(mid).value <= v then go (mid + 1) hi else go lo mid
  in
  go 0 t.size

let insert_at t i tu =
  if t.size = Array.length t.tuples then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.tuples 0 bigger 0 t.size;
    t.tuples <- bigger
  end;
  Array.blit t.tuples i t.tuples (i + 1) (t.size - i);
  t.tuples.(i) <- tu;
  t.size <- t.size + 1

(* Merge right-to-left where the rank-dependent invariant allows; rmin
   values are computed once up front and stay valid (merging i into its
   successor leaves every surviving tuple's rmin unchanged). *)
let compress t =
  if t.size > 2 then begin
    let rmin = Array.make t.size 0 in
    let acc = ref 0 in
    for i = 0 to t.size - 1 do
      acc := !acc + t.tuples.(i).g;
      rmin.(i) <- !acc
    done;
    let merged = ref [ (t.tuples.(t.size - 1), rmin.(t.size - 1)) ] in
    for i = t.size - 2 downto 1 do
      match !merged with
      | (succ, succ_rmin) :: rest
        when float_of_int (t.tuples.(i).g + succ.g + succ.delta)
             <= span_threshold t ~lo:rmin.(i) ~hi:(succ_rmin + succ.delta) ->
        merged := ({ succ with g = succ.g + t.tuples.(i).g }, succ_rmin) :: rest
      | acc -> merged := (t.tuples.(i), rmin.(i)) :: acc
    done;
    merged := (t.tuples.(0), rmin.(0)) :: !merged;
    let new_size = List.length !merged in
    List.iteri (fun i (tu, _) -> t.tuples.(i) <- tu) !merged;
    t.size <- new_size;
    t.since_compress <- 0
  end

let insert t v =
  let i = upper_bound t v in
  let delta =
    if i = 0 || i = t.size then 0
    else begin
      (* The new tuple's true rank lies between its predecessor's rmin
         and its successor's rmax; take f conservatively over that
         span. *)
      let rmin_before = ref 0 in
      for j = 0 to i - 1 do
        rmin_before := !rmin_before + t.tuples.(j).g
      done;
      let succ_rmax = !rmin_before + t.tuples.(i).g + t.tuples.(i).delta in
      max 0 (int_of_float (floor (span_threshold t ~lo:(!rmin_before + 1) ~hi:succ_rmax)) - 1)
    end
  in
  insert_at t i { value = v; g = 1; delta };
  t.n <- t.n + 1;
  t.since_compress <- t.since_compress + 1;
  let period = max 1 (int_of_float (1.0 /. (2.0 *. t.epsilon))) in
  if t.since_compress >= period then compress t

(* First tuple whose rmax exceeds r + allowance; its predecessor answers
   the query within the allowance. *)
let query_rank t r =
  if t.n = 0 then invalid_arg "Ckms.query_rank: empty sketch";
  let r = if r < 1 then 1 else if r > t.n then t.n else r in
  let allowance = error_allowance t r in
  let limit = float_of_int r +. allowance in
  let rec go i rmin prev =
    if i >= t.size then t.tuples.(t.size - 1).value
    else begin
      let rmin = rmin + t.tuples.(i).g in
      if float_of_int (rmin + t.tuples.(i).delta) > limit then prev
      else go (i + 1) rmin t.tuples.(i).value
    end
  in
  go 0 0 t.tuples.(0).value

let quantile t phi =
  if not (phi > 0.0 && phi <= 1.0) then invalid_arg "Ckms.quantile: phi not in (0,1]";
  if t.n = 0 then invalid_arg "Ckms.quantile: empty sketch";
  query_rank t (int_of_float (ceil (phi *. float_of_int t.n)))

let error_bound t = t.epsilon

let dump t =
  let rmin = ref 0 in
  List.init t.size (fun i ->
      rmin := !rmin + t.tuples.(i).g;
      (t.tuples.(i).value, !rmin, !rmin + t.tuples.(i).delta))

let sketch : (module Quantile_sketch.S with type t = t) =
  (module struct
    type nonrec t = t

    let insert = insert
    let count = count
    let memory_words = memory_words
    let query_rank = query_rank
    let rank_of t v =
      (* midpoint of the bracketing tuple's interval, as in Gk *)
      let i = upper_bound t v in
      if i = 0 then 0
      else begin
        let rmin = ref 0 in
        for j = 0 to i - 1 do
          rmin := !rmin + t.tuples.(j).g
        done;
        !rmin + (t.tuples.(i - 1).delta / 2)
      end

    let error_bound = error_bound
  end)
