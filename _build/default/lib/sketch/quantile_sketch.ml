(* Common interface for streaming quantile summaries.

   All sketches in this library summarise a stream of [int]s and answer
   rank queries under the paper's rank convention
   (rank(e, D) = |{x : x <= e}|).  Construction is sketch-specific and
   lives in each module; [packed] lets callers (the pure-streaming
   baselines of Section 2) treat any sketch uniformly. *)

module type S = sig
  type t

  (** Process one stream element. *)
  val insert : t -> int -> unit

  (** Number of elements inserted so far. *)
  val count : t -> int

  (** Current summary footprint in machine words (the unit used for all
      memory budgets in the benches). *)
  val memory_words : t -> int

  (** [query_rank t r] returns an element whose rank approximates [r]
      (1-based, clamped to [1, count]). Raises [Invalid_argument] on an
      empty sketch. *)
  val query_rank : t -> int -> int

  (** [rank_of t v] estimates rank(v, stream). *)
  val rank_of : t -> int -> int

  (** Worst-case rank-error guarantee, as a fraction of [count], that
      the sketch currently provides. *)
  val error_bound : t -> float
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed

let insert (Packed ((module M), t)) v = M.insert t v
let count (Packed ((module M), t)) = M.count t
let memory_words (Packed ((module M), t)) = M.memory_words t
let query_rank (Packed ((module M), t)) r = M.query_rank t r
let rank_of (Packed ((module M), t)) v = M.rank_of t v
let error_bound (Packed ((module M), t)) = M.error_bound t

(* The phi-quantile of Definition 1, via a rank query at ceil(phi * n). *)
let quantile packed phi =
  if not (phi > 0.0 && phi <= 1.0) then invalid_arg "Quantile_sketch.quantile: phi not in (0,1]";
  let n = count packed in
  if n = 0 then invalid_arg "Quantile_sketch.quantile: empty sketch";
  query_rank packed (int_of_float (ceil (phi *. float_of_int n)))
