(** Heavy hitters over the union of historical and streaming data —
    the companion primitive the paper names next to quantiles
    (Section 1) and leaves as future work (Section 4), built in the
    same architecture: a SpaceSaving sketch on the live stream, probes
    into the sorted partitions for history (no extra historical state).

    Wraps a quantile {!Engine.t}: feed data through this module and
    both primitives stay available ({!engine} exposes the quantile
    side). *)

type t

(** A verified heavy hitter: true count(value, T) ∈ [lower, upper]. *)
type hit = {
  value : int;
  lower : int;
  upper : int;
}

type report = {
  io : Hsq_storage.Io_stats.counters;
  candidates : int; (** distinct values verified *)
}

(** [create ?capacity config]. [capacity] bounds the stream sketch and
    the smallest guaranteed-complete φ (φ ≥ 1/capacity). *)
val create : ?capacity:int -> Config.t -> t

(** Attach to an existing engine with an empty stream (e.g. restored by
    {!Persist}). Raises [Invalid_argument] if the engine already holds
    stream data this wrapper never observed. *)
val of_engine : ?capacity:int -> Engine.t -> t

(** The underlying quantile engine (for quantile queries and window
    metadata). *)
val engine : t -> Engine.t

val capacity : t -> int
val total_size : t -> int
val stream_size : t -> int
val memory_words : t -> int

(** Feed one element to both the quantile engine and the stream
    heavy-hitters sketch. *)
val observe : t -> int -> unit

(** Archive the batch; the stream heavy-hitters sketch resets. *)
val end_time_step : t -> Hsq_hist.Level_index.update_report

val ingest_batch : t -> int array -> Hsq_hist.Level_index.update_report

(** [frequent t ~phi] returns every value with count ≥ ⌈φN⌉
    (completeness), none below ⌈φN⌉ − m/capacity (soundness), with
    certified per-value count bounds; ~1/φ disk probes per partition
    plus two rank searches per candidate. Raises [Invalid_argument] if
    φ ∉ (0,1), φ < 1/capacity, or there is no data. *)
val frequent : t -> phi:float -> hit list * report

(** Same over the last [window] archived steps plus the live stream. *)
val frequent_window :
  t -> window:int -> phi:float -> (hit list * report, Engine.window_error) result
