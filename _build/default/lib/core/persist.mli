(** Warehouse persistence across process restarts.

    The block-device file holds every partition's data; a plain-text
    metadata sidecar records the configuration and partition table.
    [load] re-attaches the partitions and rebuilds each summary with at
    most β₁ block reads. The live stream is volatile by design
    (Figure 1): a restored engine starts with an empty stream. *)

exception Corrupt_metadata of string

(** Write the metadata sidecar for [engine] to [path]. The engine's
    device should be file-backed for the data itself to survive. *)
val save : Engine.t -> path:string -> unit

(** Restore an engine from a (reopened) device and its metadata.
    Raises {!Corrupt_metadata} on version/parse/invariant mismatches,
    including unsorted on-disk partitions. *)
val load : device:Hsq_storage.Block_device.t -> path:string -> Engine.t

(** Reopen [device_path] (block size taken from the metadata) and
    [load]. *)
val load_files : device_path:string -> meta_path:string -> Engine.t
