(* The merged summary TS of the entire dataset T = H u R, with per-entry
   rank bounds L_i and U_i (Section 2.3.1, Figure 3, Lemma 2).

   For each summary value v:

     L(v) = stream_lower(v) + sum_P hist_lower_P(v)
     U(v) = stream_upper(v) + sum_P hist_upper_P(v)

   The historical contributions use the *exact* indices stored in the
   partition summaries, which tightens (never loosens) the paper's
   m_P*eps1*(alpha_P - 1) / m_P*eps1*alpha_P bounds; the stream
   contributions follow Lemma 2 verbatim. *)

type entry = {
  value : int;
  lower : float; (* L_i: rank(value, T) >= lower *)
  upper : float; (* U_i: rank(value, T) <= upper *)
}

type t = {
  entries : entry array; (* sorted by value, distinct values *)
  n_total : int; (* |T| = n + m *)
  m_stream : int;
  hist_elements : int;
}

let hist_bounds partitions v =
  List.fold_left
    (fun (lo, hi) p ->
      let l, h = Hsq_hist.Partition_summary.rank_bounds (Hsq_hist.Partition.summary p) v in
      (lo + l, hi + h))
    (0, 0) partitions

let build ~partitions ~stream =
  let hist_values =
    List.concat_map
      (fun p ->
        Array.to_list
          (Array.map
             (fun (e : Hsq_hist.Partition_summary.entry) -> e.value)
             (Hsq_hist.Partition_summary.entries (Hsq_hist.Partition.summary p))))
      partitions
  in
  let all = Array.of_list (Array.to_list (Stream_summary.values stream) @ hist_values) in
  Array.sort compare all;
  (* Distinct values only: L and U depend on the value alone, so
     duplicates across summaries carry no extra information. *)
  let distinct = ref [] in
  Array.iter
    (fun v -> match !distinct with x :: _ when x = v -> () | _ -> distinct := v :: !distinct)
    all;
  let hist_elements =
    List.fold_left (fun acc p -> acc + Hsq_hist.Partition.size p) 0 partitions
  in
  let m_stream = Stream_summary.stream_size stream in
  let entries =
    List.rev_map
      (fun v ->
        let hlo, hhi = hist_bounds partitions v in
        {
          value = v;
          lower = float_of_int hlo +. Stream_summary.rank_lower stream v;
          upper = float_of_int hhi +. Stream_summary.rank_upper stream v;
        })
      !distinct
  in
  {
    entries = Array.of_list entries;
    n_total = hist_elements + m_stream;
    m_stream;
    hist_elements;
  }

let entries t = t.entries
let size t = Array.length t.entries
let n_total t = t.n_total
let m_stream t = t.m_stream
let hist_elements t = t.hist_elements

(* Algorithm 5: the smallest j with L_j >= r, else the last entry. *)
let quick_select t ~rank =
  if Array.length t.entries = 0 then invalid_arg "Union_summary.quick_select: empty summary";
  let r = float_of_int rank in
  let n = Array.length t.entries in
  (* L is non-decreasing in the value, so binary search applies. *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.entries.(mid).lower >= r then go lo mid else go (mid + 1) hi
  in
  let j = go 0 n in
  let j = if j = n then n - 1 else j in
  t.entries.(j).value

(* Algorithm 7 (GenerateFilters): values u <= v bracketing the element
   of the requested rank: rank(u, T) <= r <= rank(v, T).

   u is the largest entry with U <= r; if every U exceeds r, any value
   below the global minimum works, so we use min - 1.  v is the
   smallest entry with L >= r; since L of the last entry is >= N - eps*N
   and r <= N, the last entry is a safe fallback. *)
let filters t ~rank =
  if Array.length t.entries = 0 then invalid_arg "Union_summary.filters: empty summary";
  let r = float_of_int rank in
  let n = Array.length t.entries in
  (* Both L and U are non-decreasing in the value, so binary search. *)
  let first_upper_gt =
    (* smallest i with U_i > r (= n when none) *)
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.entries.(mid).upper > r then go lo mid else go (mid + 1) hi
    in
    go 0 n
  in
  let u = if first_upper_gt = 0 then t.entries.(0).value - 1 else t.entries.(first_upper_gt - 1).value in
  let first_lower_ge =
    (* smallest i with L_i >= r (= n when none) *)
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.entries.(mid).lower >= r then go lo mid else go (mid + 1) hi
    in
    go 0 n
  in
  let v = if first_lower_ge = n then t.entries.(n - 1).value else t.entries.(first_lower_ge).value in
  (u, max u v)
