lib/core/errors.mli:
