lib/core/persist.mli: Engine Hsq_storage
