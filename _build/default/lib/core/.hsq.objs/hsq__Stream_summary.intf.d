lib/core/stream_summary.mli: Hsq_sketch
