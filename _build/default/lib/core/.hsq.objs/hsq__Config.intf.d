lib/core/config.mli:
