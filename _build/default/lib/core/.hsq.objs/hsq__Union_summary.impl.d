lib/core/union_summary.ml: Array Hsq_hist List Stream_summary
