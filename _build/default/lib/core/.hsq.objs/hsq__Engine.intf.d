lib/core/engine.mli: Config Hsq_hist Hsq_sketch Hsq_storage Stream_summary Union_summary
