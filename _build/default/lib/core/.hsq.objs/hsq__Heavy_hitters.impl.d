lib/core/heavy_hitters.ml: Array Engine Hsq_hist Hsq_sketch Hsq_storage Int List Printf Set
