lib/core/baselines.ml: Array Hsq_sketch Hsq_storage List
