lib/core/engine.ml: Array Config Float Fun Hsq_hist Hsq_sketch Hsq_storage List Stream_summary Union_summary
