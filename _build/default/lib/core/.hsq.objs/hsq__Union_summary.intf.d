lib/core/union_summary.mli: Hsq_hist Stream_summary
