lib/core/baselines.mli: Hsq_storage
