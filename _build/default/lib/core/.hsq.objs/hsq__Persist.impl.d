lib/core/persist.ml: Array Config Engine Fun Hsq_hist Hsq_storage List Printf String
