lib/core/heavy_hitters.mli: Config Engine Hsq_hist Hsq_storage
