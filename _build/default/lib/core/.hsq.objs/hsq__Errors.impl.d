lib/core/errors.ml:
