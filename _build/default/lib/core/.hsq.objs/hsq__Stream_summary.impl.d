lib/core/stream_summary.ml: Array Float Hsq_sketch
