lib/core/config.ml:
