(* Theoretical error bounds from the paper's lemmas, used by the tests
   (as pass/fail thresholds) and by the Figure 5 bench ("Relative Error
   in Theory"). *)

(* Lemma 2(2): U_i - L_i <= eps*N, realised as eps1*n + 2*eps2*m.  The
   [+ partitions] slack covers the integer ceilings of the per-partition
   summary spacing, and the +2 the one-per-side integer rounding of the
   stream summary's rank intervals. *)
let summary_window ~eps1 ~eps2 ~n ~m ~partitions =
  (eps1 *. float_of_int n)
  +. (2.0 *. eps2 *. float_of_int m)
  +. float_of_int partitions
  +. 2.0

(* Lemma 3: quick response |r^ - r| <= 1.5*eps*N. *)
let quick_rank_bound ~eps1 ~eps2 ~n ~m ~partitions =
  1.5 *. summary_window ~eps1 ~eps2 ~n ~m ~partitions

(* Lemma 5 / Theorem 2: accurate response error is O(eps*m).  The
   bisection stops inside a +-eps*m band around a rank estimate that is
   itself off by at most ~eps2*m, plus one for the integer boundary. *)
let accurate_rank_bound ~eps ~eps2 ~m =
  (eps *. float_of_int m) +. (2.0 *. eps2 *. float_of_int m) +. 1.0

(* Relative error as the experiments report it: |r - r^| / (phi * N)
   (Section 3.1, "Performance Metrics"). *)
let relative ~rank_error ~phi ~total = rank_error /. (phi *. float_of_int total)

(* The Figure 5 theory curve: accurate-response relative error bound. *)
let theory_relative_accurate ~eps ~eps2 ~m ~phi ~total =
  relative ~rank_error:(accurate_rank_bound ~eps ~eps2 ~m) ~phi ~total
