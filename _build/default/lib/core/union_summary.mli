(** The merged summary TS of T = H ∪ R with rank bounds L/U
    (Section 2.3.1, Figure 3, Lemma 2).

    Guarantees (checked by the property suites): for each entry,
    [lower ≤ rank(value, T) ≤ upper], and consecutive bound windows
    overlap within ε·N. Historical contributions use the exact indices
    stored in partition summaries, which only tightens the paper's
    bounds. *)

type entry = { value : int; lower : float; upper : float }
type t

val build : partitions:Hsq_hist.Partition.t list -> stream:Stream_summary.t -> t
val entries : t -> entry array
val size : t -> int

(** |T| = n + m over the partitions and stream given to [build]. *)
val n_total : t -> int

val m_stream : t -> int
val hist_elements : t -> int

(** Algorithm 5 (quick response): value of the smallest entry whose L
    reaches [rank], else the last entry. Error ≤ 1.5·ε·N (Lemma 3). *)
val quick_select : t -> rank:int -> int

(** Algorithm 7 (GenerateFilters): values [(u, v)] with
    rank(u,T) ≤ rank ≤ rank(v,T) and rank(v) − rank(u) < 4εN (Lemma 4).
    [u] may be [global min − 1] when even the minimum's U exceeds
    [rank]. *)
val filters : t -> rank:int -> int * int
