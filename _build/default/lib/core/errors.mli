(** Error bounds from the paper's lemmas — pass/fail thresholds for the
    property tests and the "Relative Error in Theory" curve of
    Figure 5. *)

(** Lemma 2(2): width of a TS rank window, ε₁·n + 2·ε₂·m (+ integer
    slack of one per partition). *)
val summary_window : eps1:float -> eps2:float -> n:int -> m:int -> partitions:int -> float

(** Lemma 3: quick-response rank error ≤ 1.5·ε·N. *)
val quick_rank_bound : eps1:float -> eps2:float -> n:int -> m:int -> partitions:int -> float

(** Lemma 5 / Theorem 2: accurate-response rank error, O(ε·m). *)
val accurate_rank_bound : eps:float -> eps2:float -> m:int -> float

(** |r − r̂| / (φ·N), the relative error metric of Section 3.1. *)
val relative : rank_error:float -> phi:float -> total:int -> float

val theory_relative_accurate :
  eps:float -> eps2:float -> m:int -> phi:float -> total:int -> float
