(* Crash/restart persistence for the warehouse.

   The block-device file already holds every partition's data; this
   module adds a small plain-text metadata sidecar recording the
   configuration and the partition table.  On [load] the partitions are
   re-attached and their summaries rebuilt by probing the beta1 target
   positions on disk (<= beta1 block reads per partition — recovery
   I/O, charged to the device's counters like everything else).

   The live stream is volatile by design: data not yet archived at save
   time is not in the warehouse, exactly as in the paper's Figure 1
   setup, so a restored engine starts with an empty stream. *)

exception Corrupt_metadata of string

let format_version = 1

let sizing_to_string = function
  | Config.Epsilon e -> Printf.sprintf "epsilon %.17g" e
  | Config.Memory_words w -> Printf.sprintf "memory %d" w

let sizing_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "epsilon"; e ] -> Config.Epsilon (float_of_string e)
  | [ "memory"; w ] -> Config.Memory_words (int_of_string w)
  | _ -> raise (Corrupt_metadata ("bad sizing line: " ^ s))

let save engine ~path =
  let config = Engine.config engine in
  let hist = Engine.hist engine in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "hsq-meta %d\n" format_version;
      Printf.fprintf oc "sizing %s\n" (sizing_to_string config.Config.sizing);
      Printf.fprintf oc "kappa %d\n" config.Config.kappa;
      Printf.fprintf oc "block_size %d\n" config.Config.block_size;
      Printf.fprintf oc "steps_hint %d\n" config.Config.steps_hint;
      Printf.fprintf oc "stream_fraction %.17g\n" config.Config.stream_fraction;
      (match config.Config.sort_memory with
      | None -> Printf.fprintf oc "sort_memory none\n"
      | Some m -> Printf.fprintf oc "sort_memory %d\n" m);
      (match config.Config.sort_domains with
      | None -> Printf.fprintf oc "sort_domains none\n"
      | Some d -> Printf.fprintf oc "sort_domains %d\n" d);
      let descriptors = Hsq_hist.Level_index.describe hist in
      Printf.fprintf oc "partitions %d\n" (List.length descriptors);
      List.iter
        (fun (d : Hsq_hist.Level_index.partition_descriptor) ->
          Printf.fprintf oc "partition %d %d %d %d %d\n" d.first_block d.length d.first_step
            d.last_step d.level)
        descriptors)

let parse_lines lines =
  let expect_prefix prefix line =
    match line with
    | Some l when String.length l > String.length prefix && String.sub l 0 (String.length prefix) = prefix
      ->
      String.sub l (String.length prefix) (String.length l - String.length prefix)
    | Some l -> raise (Corrupt_metadata (Printf.sprintf "expected %S..., found %S" prefix l))
    | None -> raise (Corrupt_metadata (Printf.sprintf "missing %S line" prefix))
  in
  let next = let i = ref (-1) in fun () -> incr i; List.nth_opt lines !i in
  let header = expect_prefix "hsq-meta " (next ()) in
  if int_of_string_opt header <> Some format_version then
    raise (Corrupt_metadata ("unsupported format version " ^ header));
  let sizing = sizing_of_string (expect_prefix "sizing " (next ())) in
  let kappa = int_of_string (expect_prefix "kappa " (next ())) in
  let block_size = int_of_string (expect_prefix "block_size " (next ())) in
  let steps_hint = int_of_string (expect_prefix "steps_hint " (next ())) in
  let stream_fraction = float_of_string (expect_prefix "stream_fraction " (next ())) in
  let sort_memory =
    match expect_prefix "sort_memory " (next ()) with
    | "none" -> None
    | m -> Some (int_of_string m)
  in
  let sort_domains =
    match expect_prefix "sort_domains " (next ()) with
    | "none" -> None
    | d -> Some (int_of_string d)
  in
  let count = int_of_string (expect_prefix "partitions " (next ())) in
  let descriptors =
    List.init count (fun _ ->
        let fields = String.split_on_char ' ' (expect_prefix "partition " (next ())) in
        match List.map int_of_string fields with
        | [ first_block; length; first_step; last_step; level ] ->
          {
            Hsq_hist.Level_index.first_block;
            length;
            first_step;
            last_step;
            level;
          }
        | _ -> raise (Corrupt_metadata "bad partition line"))
  in
  let config =
    Config.make ~kappa ~block_size ?sort_memory ~steps_hint ~stream_fraction ?sort_domains sizing
  in
  (config, descriptors)

(* Cheap consistency check on a restored partition: its summary entries
   (just re-read from disk) must be sorted — catching truncated or
   shuffled device files before they can serve wrong answers. *)
let verify_partition p =
  let entries = Hsq_hist.Partition_summary.entries (Hsq_hist.Partition.summary p) in
  let ok = ref true in
  for i = 1 to Array.length entries - 1 do
    if entries.(i).Hsq_hist.Partition_summary.value < entries.(i - 1).Hsq_hist.Partition_summary.value
    then ok := false
  done;
  if not !ok then
    raise
      (Corrupt_metadata
         (Printf.sprintf "partition at block %d is not sorted on disk"
            (Hsq_storage.Run.first_block (Hsq_hist.Partition.run p))))

let load ~device ~path =
  let lines =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  let config, descriptors =
    try parse_lines lines with
    | Corrupt_metadata _ as e -> raise e
    | Failure msg -> raise (Corrupt_metadata msg)
  in
  if Hsq_storage.Block_device.block_size device <> config.Config.block_size then
    raise
      (Corrupt_metadata
         (Printf.sprintf "device block size %d disagrees with metadata %d"
            (Hsq_storage.Block_device.block_size device)
            config.Config.block_size));
  let hist =
    try
      Hsq_hist.Level_index.restore ?sort_memory:config.Config.sort_memory
        ~kappa:config.Config.kappa ~beta1:(Config.beta1 config) device descriptors
    with Invalid_argument msg -> raise (Corrupt_metadata msg)
  in
  List.iter verify_partition (Hsq_hist.Level_index.partitions hist);
  Engine.of_restored ~device config hist

(* Convenience: reopen the device file and the metadata together. *)
let load_files ~device_path ~meta_path =
  let block_size =
    (* peek at the metadata for the block size before opening the device *)
    let ic = open_in meta_path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec find () =
          match input_line ic with
          | line when String.length line > 11 && String.sub line 0 11 = "block_size " ->
            int_of_string (String.sub line 11 (String.length line - 11))
          | _ -> find ()
          | exception End_of_file -> raise (Corrupt_metadata "no block_size in metadata")
        in
        find ())
  in
  let device = Hsq_storage.Block_device.open_file ~block_size ~path:device_path () in
  load ~device ~path:meta_path
