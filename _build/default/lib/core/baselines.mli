(** The comparison systems of Section 2.

    {!Streaming} is the "pure streaming" approach: one in-memory sketch
    over all of T (GK, Q-Digest, or the randomized sampler), with the
    same warehouse-loading I/O model as our algorithm (batches are
    appended and κ-cascade-merged, but never sorted). {!Strawman} keeps
    H fully sorted in a single run, re-merged every step. *)

module Raw_store : sig
  (** Block-count-only model of the unsorted warehouse. *)
  type t

  val create : kappa:int -> block_size:int -> t

  (** [(load_reads, load_writes), (merge_reads, merge_writes)] in
      blocks, for one batch of [elements]. *)
  val add_batch : t -> elements:int -> (int * int) * (int * int)

  val steps : t -> int
  val total_blocks : t -> int
end

module Streaming : sig
  type algorithm = Gk_stream | Qdigest_stream | Sampler_stream
  type t

  val algorithm_name : algorithm -> string

  (** [words] is the sketch's memory budget; [kappa]/[block_size] feed
      the warehouse-loading I/O model; [universe_bits] is for Q-Digest. *)
  val create :
    ?universe_bits:int ->
    ?seed:int ->
    algorithm:algorithm ->
    words:int ->
    kappa:int ->
    block_size:int ->
    unit ->
    t

  val observe : t -> int -> unit

  (** Load the pending batch into the warehouse model; the sketch keeps
      covering all of T. Returns the same I/O pairs as
      {!Raw_store.add_batch}. *)
  val end_time_step : t -> (int * int) * (int * int)

  val count : t -> int
  val memory_words : t -> int
  val query_rank : t -> int -> int
  val quantile : t -> float -> int
  val error_bound : t -> float

  (** Cumulative [(load, merge)] I/O pairs. *)
  val update_io : t -> (int * int) * (int * int)
end

module Strawman : sig
  type t

  val create :
    ?device:Hsq_storage.Block_device.t -> epsilon:float -> block_size:int -> unit -> t

  val device : t -> Hsq_storage.Block_device.t
  val observe : t -> int -> unit

  (** Sort the batch and two-way merge it with the full history —
      the prohibitive cost the paper improves on. Returns the step's
      I/O. *)
  val end_time_step : t -> Hsq_storage.Io_stats.counters

  val hist_size : t -> int
  val stream_size : t -> int
  val total_size : t -> int
  val memory_words : t -> int

  (** O(ε·m)-error rank query against the sorted run + GK sketch. *)
  val accurate : t -> rank:int -> int * Hsq_storage.Io_stats.counters

  val quantile : t -> float -> int * Hsq_storage.Io_stats.counters
end
