lib/hist/partition_summary.mli: Hsq_storage
