lib/hist/partition_summary.ml: Array Hsq_storage List
