lib/hist/level_index.mli: Hsq_storage Partition
