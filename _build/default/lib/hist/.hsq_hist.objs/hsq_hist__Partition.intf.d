lib/hist/partition.mli: Format Hsq_storage Partition_summary
