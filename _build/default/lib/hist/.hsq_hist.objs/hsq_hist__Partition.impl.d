lib/hist/partition.ml: Format Hsq_storage Partition_summary
