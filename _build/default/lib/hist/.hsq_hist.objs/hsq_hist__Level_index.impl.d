lib/hist/level_index.ml: Array Format Hsq_storage Hsq_util List Partition Partition_summary String Unix
