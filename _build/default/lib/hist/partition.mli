(** A historical partition: sorted run + summary + covered time steps
    (the P_{i,j} of Figure 2). *)

type t

(** Raises [Invalid_argument] if the step range is inverted or the
    summary was built for a different size. *)
val create :
  run:Hsq_storage.Run.t ->
  summary:Partition_summary.t ->
  first_step:int ->
  last_step:int ->
  level:int ->
  t

val run : t -> Hsq_storage.Run.t
val summary : t -> Partition_summary.t
val size : t -> int
val first_step : t -> int
val last_step : t -> int
val level : t -> int
val steps_covered : t -> int

(** Release the underlying run's blocks. *)
val free : t -> unit

val memory_words : t -> int
val pp : Format.formatter -> t -> unit
