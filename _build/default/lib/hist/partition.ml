(* One partition of the historical store: a sorted on-disk run plus its
   in-memory summary and the inclusive range of time steps it covers
   (P_{i,j} in Figure 2). *)

type t = {
  run : Hsq_storage.Run.t;
  summary : Partition_summary.t;
  first_step : int;
  last_step : int;
  level : int;
}

let create ~run ~summary ~first_step ~last_step ~level =
  if first_step > last_step then invalid_arg "Partition.create: bad step range";
  if Hsq_storage.Run.length run <> Partition_summary.partition_size summary then
    invalid_arg "Partition.create: summary size disagrees with run";
  { run; summary; first_step; last_step; level }

let run t = t.run
let summary t = t.summary
let size t = Hsq_storage.Run.length t.run
let first_step t = t.first_step
let last_step t = t.last_step
let level t = t.level
let steps_covered t = t.last_step - t.first_step + 1
let free t = Hsq_storage.Run.free t.run
let memory_words t = 8 + Partition_summary.memory_words t.summary

let pp ppf t =
  Format.fprintf ppf "P[%d,%d]@@L%d (%d elems, %d blocks)" t.first_step t.last_step t.level
    (size t)
    (Hsq_storage.Run.nblocks t.run)
