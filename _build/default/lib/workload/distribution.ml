(* Samplers for the value distributions behind the paper's four
   datasets (Section 3.1).  All draw from a caller-owned Xoshiro
   generator, so workloads are reproducible from one seed. *)

let normal ~mean ~stddev rng = mean +. (stddev *. Hsq_util.Xoshiro.gaussian rng)

let normal_int ~mean ~stddev rng =
  let v = normal ~mean ~stddev rng in
  if v < 0.0 then 0 else int_of_float v

let uniform_int ~lo ~hi rng =
  if hi <= lo then invalid_arg "Distribution.uniform_int: empty range";
  lo + Hsq_util.Xoshiro.int rng (hi - lo)

let lognormal ~mu ~sigma rng = exp (normal ~mean:mu ~stddev:sigma rng)

(* Pareto with scale x_m and shape a via inverse transform. *)
let pareto ~scale ~shape rng =
  let u = 1.0 -. Hsq_util.Xoshiro.float rng in
  scale /. (u ** (1.0 /. shape))

(* Zipf over ranks 1..n with exponent s, sampled by inverse CDF binary
   search over a precomputed table (O(log n) per draw). *)
module Zipf = struct
  type t = { cdf : float array }

  let create ~n ~s =
    if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
    if s < 0.0 then invalid_arg "Zipf.create: s must be >= 0";
    let cdf = Array.make n 0.0 in
    let total = ref 0.0 in
    for i = 0 to n - 1 do
      total := !total +. (1.0 /. (float_of_int (i + 1) ** s));
      cdf.(i) <- !total
    done;
    for i = 0 to n - 1 do
      cdf.(i) <- cdf.(i) /. !total
    done;
    { cdf }

  let size t = Array.length t.cdf

  (* 0-based rank of the drawn item (0 = most popular). *)
  let sample t rng =
    let u = Hsq_util.Xoshiro.float rng in
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.cdf.(mid) < u then go (mid + 1) hi else go lo mid
    in
    go 0 (Array.length t.cdf - 1)
end
