(** The four evaluation datasets of Section 3.1 (Normal, Uniform,
    Wikipedia-like, network-trace-like), as stateful per-time-step batch
    generators. The two real traces are synthetic equivalents — see
    DESIGN.md "Substitutions". Deterministic per seed. *)

type t

val name : t -> string

(** All generated values fit in [\[0, 2^universe_bits)] (used to size
    Q-Digest). *)
val universe_bits : t -> int

(** [next_batch t size] generates the next time step's batch. Raises
    [Invalid_argument] if [size < 1]. *)
val next_batch : t -> int -> int array

val normal : seed:int -> t
val uniform : seed:int -> t
val wikipedia : seed:int -> t
val network : seed:int -> t

(** Raises [Invalid_argument] for names outside {!names}. *)
val by_name : seed:int -> string -> t

val names : string list
val all : seed:int -> t list
