(** Exact ground truth and the relative-error metric of Section 3.1.

    The rank error of answering rank [r] with value [v] is the distance
    from [r] to the interval of ranks [v] legitimately answers
    ([|{x < v}| + 1, |{x ≤ v}|]); relative error divides by φ·N. *)

type t

val create : unit -> t
val add : t -> int -> unit
val add_batch : t -> int array -> unit
val count : t -> int

(** Exact rank(v) = |{x ≤ v}|. *)
val rank_of : t -> int -> int

(** Exact φ-quantile (Definition 1). *)
val quantile : t -> float -> int

(** Exact element of rank r (1-based, clamped). *)
val select : t -> int -> int

(** All elements, sorted (fresh array). *)
val sorted : t -> int array

val rank_error : t -> rank:int -> value:int -> int

(** |r − r̂| / (φ·N) for the φ-quantile query answered with [value]. *)
val relative_error : t -> phi:float -> value:int -> float
