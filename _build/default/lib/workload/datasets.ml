(* The four evaluation datasets of Section 3.1, scaled by a step-size
   parameter instead of the paper's fixed 0.5-1 GB batches.

   The two real traces are unavailable offline and are replaced by
   synthetic equivalents that preserve what matters to a quantile
   sketch — the shape and duplicate structure of the value distribution
   (see DESIGN.md "Substitutions"):

   - "wikipedia": sizes of pages served per request — a log-normal body
     with a Pareto tail, heavily duplicate at popular sizes;
   - "network": source-destination pairs from a peering link — Zipf
     host popularity on both endpoints, packed into one integer key,
     with a slow per-step drift of the popular set (temporal locality). *)

type t = {
  name : string;
  universe_bits : int; (* values fit in [0, 2^universe_bits) *)
  next_batch : int -> int array; (* step_size -> one time step's data *)
}

let name t = t.name
let universe_bits t = t.universe_bits
let next_batch t size = t.next_batch size

let check_size size = if size < 1 then invalid_arg "Datasets.next_batch: size must be >= 1"

(* Normal: mean 100e6, stddev 10e6 — the paper's exact parameters. *)
let normal ~seed =
  let rng = Hsq_util.Xoshiro.create (seed lxor 0x6E6F726D) in
  {
    name = "normal";
    universe_bits = 28;
    next_batch =
      (fun size ->
        check_size size;
        Array.init size (fun _ ->
            let v = Distribution.normal_int ~mean:100_000_000.0 ~stddev:10_000_000.0 rng in
            min v ((1 lsl 28) - 1)));
  }

(* Uniform: integers in [1e8, 1e9), the paper's exact range. *)
let uniform ~seed =
  let rng = Hsq_util.Xoshiro.create (seed lxor 0x756E6966) in
  {
    name = "uniform";
    universe_bits = 30;
    next_batch =
      (fun size ->
        check_size size;
        Array.init size (fun _ -> Distribution.uniform_int ~lo:100_000_000 ~hi:1_000_000_000 rng));
  }

(* Wikipedia-like page sizes: log-normal body, 3% Pareto tail, clamped
   to [64 B, 256 MB). *)
let wikipedia ~seed =
  let rng = Hsq_util.Xoshiro.create (seed lxor 0x77696B69) in
  let sample () =
    let raw =
      if Hsq_util.Xoshiro.float rng < 0.03 then
        Distribution.pareto ~scale:250_000.0 ~shape:1.2 rng
      else Distribution.lognormal ~mu:8.7 ~sigma:1.4 rng
    in
    let v = int_of_float raw in
    max 64 (min v ((1 lsl 28) - 1))
  in
  {
    name = "wikipedia";
    universe_bits = 28;
    next_batch =
      (fun size ->
        check_size size;
        Array.init size (fun _ -> sample ()));
  }

(* Network-trace-like source-destination pairs: 4096 hosts with Zipf
   popularity on each endpoint, packed as src * 4096 + dst; the popular
   set drifts by one host rotation per batch. *)
let network ~seed =
  let rng = Hsq_util.Xoshiro.create (seed lxor 0x6E657477) in
  let hosts = 4096 in
  let zipf = Distribution.Zipf.create ~n:hosts ~s:1.1 in
  let step = ref 0 in
  {
    name = "network";
    universe_bits = 24;
    next_batch =
      (fun size ->
        check_size size;
        incr step;
        let rotate h = (h + (!step * 7)) mod hosts in
        Array.init size (fun _ ->
            let src = rotate (Distribution.Zipf.sample zipf rng) in
            let dst = rotate (Distribution.Zipf.sample zipf rng) in
            (src * hosts) + dst));
  }

let by_name ~seed = function
  | "normal" -> normal ~seed
  | "uniform" -> uniform ~seed
  | "wikipedia" -> wikipedia ~seed
  | "network" -> network ~seed
  | other -> invalid_arg (Printf.sprintf "Datasets.by_name: unknown dataset %S" other)

let names = [ "uniform"; "normal"; "wikipedia"; "network" ]
let all ~seed = List.map (fun n -> by_name ~seed n) names
