(* Ground truth for experiments: keeps every element, answers exact
   ranks and quantiles, and scores approximate answers with the paper's
   relative-error metric (Section 3.1).

   A returned value v may not occur in the data at all (Algorithm 8
   bisects the value domain), so the "rank error" of answering rank r
   with v is the distance from r to the interval
   [ |{x < v}| + 1, |{x <= v}| ] of ranks v legitimately answers;
   it is 0 when v is the Definition-1 answer for r. *)

type t = { exact : Hsq_sketch.Exact.t }

let create () = { exact = Hsq_sketch.Exact.create () }
let add t v = Hsq_sketch.Exact.insert t.exact v
let add_batch t batch = Array.iter (add t) batch
let count t = Hsq_sketch.Exact.count t.exact
let rank_of t v = Hsq_sketch.Exact.rank_of t.exact v
let quantile t phi = Hsq_sketch.Exact.quantile t.exact phi
let select t r = Hsq_sketch.Exact.query_rank t.exact r
let sorted t = Hsq_sketch.Exact.sorted_view t.exact

let rank_error t ~rank ~value =
  let upper = rank_of t value in
  (* For a value absent from the data, |{x < v}| = |{x <= v}|, and the
     value legitimately answers exactly rank(v); min collapses the
     interval to that point instead of leaving it empty. *)
  let lower = min upper (rank_of t (value - 1) + 1) in
  if rank < lower then lower - rank else if rank > upper then rank - upper else 0

let relative_error t ~phi ~value =
  let n = count t in
  if n = 0 then invalid_arg "Oracle.relative_error: empty oracle";
  let rank = int_of_float (ceil (phi *. float_of_int n)) in
  float_of_int (rank_error t ~rank ~value) /. (phi *. float_of_int n)
