lib/workload/distribution.mli: Hsq_util
