lib/workload/datasets.ml: Array Distribution Hsq_util List Printf
