lib/workload/distribution.ml: Array Hsq_util
