lib/workload/oracle.ml: Array Hsq_sketch
