lib/workload/oracle.mli:
