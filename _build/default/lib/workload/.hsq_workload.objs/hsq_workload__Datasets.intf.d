lib/workload/datasets.mli:
