(** Value distributions behind the paper's evaluation datasets. All
    samplers draw from a caller-owned {!Hsq_util.Xoshiro.t}. *)

val normal : mean:float -> stddev:float -> Hsq_util.Xoshiro.t -> float

(** Normal deviate rounded to int and clamped at 0. *)
val normal_int : mean:float -> stddev:float -> Hsq_util.Xoshiro.t -> int

(** Uniform in [\[lo, hi)]. Raises [Invalid_argument] on empty range. *)
val uniform_int : lo:int -> hi:int -> Hsq_util.Xoshiro.t -> int

val lognormal : mu:float -> sigma:float -> Hsq_util.Xoshiro.t -> float
val pareto : scale:float -> shape:float -> Hsq_util.Xoshiro.t -> float

module Zipf : sig
  type t

  (** Zipf over ranks 1..n with exponent [s]. *)
  val create : n:int -> s:float -> t

  val size : t -> int

  (** 0-based rank of the drawn item (0 = most popular). *)
  val sample : t -> Hsq_util.Xoshiro.t -> int
end
