lib/util/sorted.mli:
