lib/util/parallel.mli:
