lib/util/splitmix.mli:
