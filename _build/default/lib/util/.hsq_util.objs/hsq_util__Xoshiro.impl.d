lib/util/xoshiro.ml: Int64 Splitmix
