lib/util/xoshiro.mli:
