lib/util/stats.mli:
