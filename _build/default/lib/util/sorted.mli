(** Rank and selection primitives over sorted [int array]s.

    The rank convention follows the paper's Definition 1:
    [rank e d] is the number of elements of [d] less than or equal to
    [e]. These functions are the in-memory reference implementation that
    every approximate structure is tested against. *)

val is_sorted : int array -> bool

(** [rank a v] = |{x ∈ a : x ≤ v}|; [a] must be sorted ascending. *)
val rank : int array -> int -> int

(** [rank_strict a v] = |{x ∈ a : x < v}|. *)
val rank_strict : int array -> int -> int

(** [select a r] is the smallest element with rank ≥ r (1-indexed [r],
    clamped to [1, length a]). Raises [Invalid_argument] on empty input. *)
val select : int array -> int -> int

(** [quantile a phi] is the φ-quantile of Definition 1, i.e.
    [select a (ceil (phi * n))]. Raises [Invalid_argument] if [a] is
    empty or [phi] outside (0, 1]. *)
val quantile : int array -> float -> int

(** Merge two sorted arrays into a new sorted array. *)
val merge : int array -> int array -> int array
