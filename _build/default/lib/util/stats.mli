(** Online (Welford) and offline statistics used by the bench harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation; 0 when count < 2 *)
  min : float;
  max : float;
}

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val summary : t -> summary
val of_list : float list -> summary

(** Median of a non-empty list (the paper reports medians of 7 runs).
    Raises [Invalid_argument] on empty input. *)
val median : float list -> float

(** Arithmetic mean of a non-empty list. *)
val mean : float list -> float
