(** Fork-join helpers on OCaml 5 domains — the substrate for the
    paper's future-work parallel sorting / parallel partition
    processing (Section 4). *)

(** min(4, recommended domain count). *)
val default_domains : unit -> int

(** Order-preserving parallel map; chunks the input over at most
    [domains] fresh domains. Falls back to sequential for tiny inputs
    or [domains = 1]. *)
val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** In-place sort, observationally identical to [Array.sort compare]:
    domain-sorted chunks merged on the caller. Sequential below 4096
    elements. *)
val sort : ?domains:int -> int array -> unit
