(** SplitMix64 pseudo-random number generator.

    A tiny, fast, splittable PRNG with a 64-bit state.  Every source of
    randomness in this repository bottoms out here (possibly via
    {!Xoshiro}), so that all experiments are reproducible from a single
    integer seed. *)

type t

(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** Next raw 64-bit output. *)
val next_int64 : t -> int64

(** Next non-negative 62-bit integer. *)
val next : t -> int

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float
