(* Small fork-join helpers on OCaml 5 domains.

   The paper's future-work section singles out parallel sorting and
   parallel partition processing (Section 4); these helpers provide the
   fork-join substrate.  Work is split into at most [domains] chunks,
   each run in a fresh domain (spawn cost ~ tens of microseconds, so
   callers should hand over milliseconds of work per chunk). *)

let default_domains () = max 1 (min 4 (Domain.recommended_domain_count ()))

(* Apply [f] to every element, fanning chunks out over domains.  Order
   is preserved.  Exceptions propagate (the first one raised re-raises
   in the caller). *)
let map ?domains f input =
  let n = Array.length input in
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  if n = 0 then [||]
  else if domains = 1 || n = 1 then Array.map f input
  else begin
    let chunks = min domains n in
    let per = (n + chunks - 1) / chunks in
    let handles =
      List.init chunks (fun c ->
          let start = c * per in
          let len = min per (n - start) in
          Domain.spawn (fun () -> Array.init len (fun i -> f input.(start + i))))
    in
    let parts = List.map Domain.join handles in
    Array.concat parts
  end

(* Sort an int array with [domains]-way chunked merge sort: each chunk
   is sorted in its own domain, then chunks are merged on the caller.
   Deterministic and observationally identical to [Array.sort compare];
   faster from roughly 10^5 elements upward. *)
let sort ?domains data =
  let n = Array.length data in
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  if domains = 1 || n < 4096 then Array.sort compare data
  else begin
    let chunks = min domains ((n + 4095) / 4096) in
    let per = (n + chunks - 1) / chunks in
    let handles =
      List.init chunks (fun c ->
          let start = c * per in
          let len = min per (n - start) in
          let chunk = Array.sub data start len in
          Domain.spawn (fun () ->
              Array.sort compare chunk;
              chunk))
    in
    let sorted_chunks = List.map Domain.join handles in
    (* Fold-merge (chunk count is tiny, so pairwise cost is fine). *)
    let merged =
      match sorted_chunks with
      | [] -> [||]
      | first :: rest -> List.fold_left Sorted.merge first rest
    in
    Array.blit merged 0 data 0 n
  end
