(** xoshiro256** pseudo-random number generator.

    The workhorse generator used by workload synthesis.  Deterministic
    given its seed; seeding goes through {!Splitmix} as recommended by
    the xoshiro authors. *)

type t

val create : int -> t
val copy : t -> t
val next_int64 : t -> int64

(** Non-negative 62-bit integer. *)
val next : t -> int

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

val bool : t -> bool

(** Standard normal deviate (Marsaglia polar method). The spare deviate
    is cached per generator, so streams from distinct generators are
    fully independent and reproducible. *)
val gaussian : t -> float
