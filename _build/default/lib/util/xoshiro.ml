(* xoshiro256** 1.0 (Blackman & Vigna).  State is seeded from SplitMix64
   as the authors recommend. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable spare : float option; (* cached second deviate for [gaussian] *)
}

let create seed =
  let sm = Splitmix.create seed in
  let s0 = Splitmix.next_int64 sm in
  let s1 = Splitmix.next_int64 sm in
  let s2 = Splitmix.next_int64 sm in
  let s3 = Splitmix.next_int64 sm in
  { s0; s1; s2; s3; spare = None }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3; spare = t.spare }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Xoshiro.int: bound must be positive";
  next t mod bound

let float t =
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let bool t = Int64.compare (Int64.logand (next_int64 t) 1L) 0L <> 0

(* Marsaglia polar method; caches the spare deviate per generator. *)
let gaussian t =
  match t.spare with
  | Some g ->
    t.spare <- None;
    g
  | None ->
    let rec draw () =
      let u = (2.0 *. float t) -. 1.0 in
      let v = (2.0 *. float t) -. 1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || s = 0.0 then draw () else (u, v, s)
    in
    let u, v, s = draw () in
    let mul = sqrt (-2.0 *. log s /. s) in
    t.spare <- Some (v *. mul);
    u *. mul
