(* SplitMix64 (Steele, Lea, Flood 2014).  Used both directly and to seed
   {!Xoshiro}.  All arithmetic is on [int64] to stay faithful to the
   reference implementation; the public API exposes OCaml [int]s. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Non-negative 62-bit value, safe to use as an OCaml [int]. *)
let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  next t mod bound

let float t =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0
