(* Utilities over sorted integer arrays.  The rank convention throughout
   the repository follows Definition 1 of the paper:
   rank(e, D) = |{ x in D : x <= e }|. *)

let is_sorted a =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i - 1) <= a.(i) && go (i + 1)) in
  n <= 1 || go 1

(* Number of elements <= v in the sorted array [a], i.e. the index of the
   first element > v.  Classic upper-bound binary search. *)
let rank a v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) <= v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

(* Number of elements < v: index of the first element >= v. *)
let rank_strict a v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) < v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

(* Smallest element of [a] whose rank is >= r (the r-th smallest,
   1-indexed); the phi-quantile of Definition 1 for r = ceil(phi * n). *)
let select a r =
  let n = Array.length a in
  if n = 0 then invalid_arg "Sorted.select: empty array";
  let r = if r < 1 then 1 else if r > n then n else r in
  a.(r - 1)

let quantile a phi =
  let n = Array.length a in
  if n = 0 then invalid_arg "Sorted.quantile: empty array";
  if not (phi > 0.0 && phi <= 1.0) then invalid_arg "Sorted.quantile: phi not in (0,1]";
  select a (int_of_float (ceil (phi *. float_of_int n)))

let merge a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0 in
  let i = ref 0 and j = ref 0 in
  for k = 0 to na + nb - 1 do
    if !j >= nb || (!i < na && a.(!i) <= b.(!j)) then begin
      out.(k) <- a.(!i);
      incr i
    end
    else begin
      out.(k) <- b.(!j);
      incr j
    end
  done;
  out
