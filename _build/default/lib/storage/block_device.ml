(* A simulated block device.

   The paper evaluates against a real disk with 100 KB blocks and reports
   costs as numbers of block accesses.  Simulating the device keeps those
   counts exact and deterministic (see DESIGN.md, "Substitutions").  Two
   backends share the interface: an in-memory store used by tests and
   benches, and a file-backed store that persists blocks as fixed-size
   records of 8-byte big-endian integers. *)

exception Device_error of string

type op = Read | Write

type backend =
  | Memory of int array option array ref (* growable table of blocks *)
  | File of { channel : Out_channel.t; read_channel : In_channel.t; path : string }

type t = {
  block_size : int;
  stats : Io_stats.t;
  mutable next_free : int;
  mutable freed_blocks : int; (* capacity-accounting for dropped partitions *)
  backend : backend;
  mutable fault : (op -> int -> bool) option;
  mutable pool : Lru.t option; (* optional buffer pool (OS page cache stand-in) *)
}

let block_size t = t.block_size
let stats t = t.stats
let allocated_blocks t = t.next_free
let live_blocks t = t.next_free - t.freed_blocks

let create_memory ~block_size () =
  if block_size <= 0 then invalid_arg "Block_device.create_memory: block_size must be positive";
  {
    block_size;
    stats = Io_stats.create ();
    next_free = 0;
    freed_blocks = 0;
    backend = Memory (ref (Array.make 64 None));
    fault = None;
    pool = None;
  }

let create_file ~block_size ~path () =
  if block_size <= 0 then invalid_arg "Block_device.create_file: block_size must be positive";
  let channel = Out_channel.open_gen [ Open_binary; Open_creat; Open_trunc; Open_wronly ] 0o644 path in
  let read_channel = In_channel.open_gen [ Open_binary; Open_rdonly ] 0o644 path in
  {
    block_size;
    stats = Io_stats.create ();
    next_free = 0;
    freed_blocks = 0;
    backend = File { channel; read_channel; path };
    fault = None;
    pool = None;
  }

(* Reopen an existing device file: allocation resumes after the blocks
   already on disk, so restored runs can be read back. *)
let open_file ~block_size ~path () =
  if block_size <= 0 then invalid_arg "Block_device.open_file: block_size must be positive";
  if not (Sys.file_exists path) then
    raise (Device_error (Printf.sprintf "no device file at %s" path));
  let channel = Out_channel.open_gen [ Open_binary; Open_wronly ] 0o644 path in
  let read_channel = In_channel.open_gen [ Open_binary; Open_rdonly ] 0o644 path in
  let size = Int64.to_int (In_channel.length read_channel) in
  let bytes_per_block = 8 * block_size in
  if size mod bytes_per_block <> 0 then
    raise
      (Device_error
         (Printf.sprintf "device file %s is not a whole number of %d-byte blocks" path
            bytes_per_block));
  {
    block_size;
    stats = Io_stats.create ();
    next_free = size / bytes_per_block;
    freed_blocks = 0;
    backend = File { channel; read_channel; path };
    fault = None;
    pool = None;
  }

let close t =
  match t.backend with
  | Memory _ -> ()
  | File { channel; read_channel; path = _ } ->
    Out_channel.close channel;
    In_channel.close read_channel

let path t = match t.backend with Memory _ -> None | File { path; _ } -> Some path

let set_fault t fault = t.fault <- fault

(* Buffer pool: hits are served from memory and cost no device I/O
   (only pool statistics); misses read through and populate the pool;
   writes are write-through.  [free] invalidates cached blocks. *)
let enable_pool t ~capacity = t.pool <- Some (Lru.create ~capacity)
let disable_pool t = t.pool <- None

let pool_stats t =
  match t.pool with None -> None | Some pool -> Some (Lru.hits pool, Lru.misses pool)

let check_fault t op addr =
  match t.fault with
  | Some f when f op addr ->
    let kind = match op with Read -> "read" | Write -> "write" in
    raise (Device_error (Printf.sprintf "injected %s fault at block %d" kind addr))
  | _ -> ()

let alloc t nblocks =
  if nblocks < 0 then invalid_arg "Block_device.alloc: negative block count";
  let addr = t.next_free in
  t.next_free <- t.next_free + nblocks;
  (match t.backend with
  | Memory table ->
    let needed = t.next_free in
    if needed > Array.length !table then begin
      let capacity = max needed (2 * Array.length !table) in
      let bigger = Array.make capacity None in
      Array.blit !table 0 bigger 0 (Array.length !table);
      table := bigger
    end
  | File _ -> ());
  addr

(* Marks blocks as reclaimable.  The simulator does not recycle
   addresses (simpler and irrelevant for I/O counting); it only tracks
   live capacity so benches can report space usage. *)
let free t ~addr ~nblocks =
  if addr < 0 || addr + nblocks > t.next_free then invalid_arg "Block_device.free: out of range";
  t.freed_blocks <- t.freed_blocks + nblocks;
  (match t.pool with
  | Some pool -> for b = addr to addr + nblocks - 1 do Lru.remove pool b done
  | None -> ());
  match t.backend with
  | Memory table -> for b = addr to addr + nblocks - 1 do !table.(b) <- None done
  | File _ -> ()

let bytes_per_block t = 8 * t.block_size

let write_block t ~addr payload =
  if Array.length payload <> t.block_size then
    invalid_arg "Block_device.write_block: payload must be exactly one block";
  if addr < 0 || addr >= t.next_free then invalid_arg "Block_device.write_block: unallocated address";
  check_fault t Write addr;
  Io_stats.note_write t.stats addr;
  (match t.pool with Some pool -> Lru.put pool addr (Array.copy payload) | None -> ());
  match t.backend with
  | Memory table -> !table.(addr) <- Some (Array.copy payload)
  | File { channel; _ } ->
    let buf = Bytes.create (bytes_per_block t) in
    Array.iteri (fun i v -> Bytes.set_int64_be buf (8 * i) (Int64.of_int v)) payload;
    Out_channel.seek channel (Int64.of_int (addr * bytes_per_block t));
    Out_channel.output_bytes channel buf;
    Out_channel.flush channel

let read_block_uncached ?hint t ~addr =
  check_fault t Read addr;
  Io_stats.note_read ?hint t.stats addr;
  match t.backend with
  | Memory table -> (
    match !table.(addr) with
    | Some block -> Array.copy block
    | None -> raise (Device_error (Printf.sprintf "read of unwritten or freed block %d" addr)))
  | File { read_channel; _ } ->
    let nbytes = bytes_per_block t in
    let buf = Bytes.create nbytes in
    In_channel.seek read_channel (Int64.of_int (addr * nbytes));
    (match In_channel.really_input read_channel buf 0 nbytes with
    | Some () -> ()
    | None -> raise (Device_error (Printf.sprintf "short read at block %d" addr)));
    Array.init t.block_size (fun i -> Int64.to_int (Bytes.get_int64_be buf (8 * i)))


let read_block ?hint t ~addr =
  if addr < 0 || addr >= t.next_free then invalid_arg "Block_device.read_block: unallocated address";
  match t.pool with
  | None -> read_block_uncached ?hint t ~addr
  | Some pool -> (
    match Lru.find pool addr with
    | Some block -> Array.copy block
    | None ->
      let block = read_block_uncached ?hint t ~addr in
      Lru.put pool addr (Array.copy block);
      block)
