(* Multi-way merge of sorted runs into a single run, as used by
   Algorithm 3 line 10 ("Multi-way merge the sorted partitions at level l
   into a single sorted partition using a single pass").

   Memory: one block buffer per input cursor plus one output block.
   I/O: every input block is read once (sequential), every output block
   written once. *)

(* Minimal binary min-heap over (value, cursor-index) pairs; ties break
   on cursor index, which makes the merge stable across runs listed
   oldest-first. *)
module Heap = struct
  type entry = { value : int; src : int }
  type t = { mutable data : entry array; mutable size : int }

  let create capacity = { data = Array.make (max 1 capacity) { value = 0; src = 0 }; size = 0 }
  let is_empty h = h.size = 0
  let less a b = a.value < b.value || (a.value = b.value && a.src < b.src)

  let push h e =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) e in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- e;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && less h.data.(!i) h.data.((!i - 1) / 2) do
      let parent = (!i - 1) / 2 in
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    done

  let pop h =
    if h.size = 0 then invalid_arg "Heap.pop: empty heap";
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
      if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.data.(!smallest) in
        h.data.(!smallest) <- h.data.(!i);
        h.data.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
end

let merge ?(observe = fun _ _ -> ()) dev runs =
  (match runs with [] | [ _ ] -> invalid_arg "Kway_merge.merge: need at least two runs" | _ -> ());
  List.iter
    (fun r ->
      if Run.device r != dev then invalid_arg "Kway_merge.merge: run on a different device")
    runs;
  let total = List.fold_left (fun acc r -> acc + Run.length r) 0 runs in
  let cursors = Array.of_list (List.map Run.cursor runs) in
  let heap = Heap.create (Array.length cursors) in
  Array.iteri
    (fun i c ->
      match Run.cursor_peek c with
      | Some v -> Heap.push heap { value = v; src = i }
      | None -> ())
    cursors;
  let out = Run.writer dev ~length:total in
  let emitted = ref 0 in
  while not (Heap.is_empty heap) do
    let { Heap.value; src } = Heap.pop heap in
    Run.writer_push out value;
    observe !emitted value;
    incr emitted;
    let c = cursors.(src) in
    Run.cursor_advance c;
    match Run.cursor_peek c with
    | Some v -> Heap.push heap { value = v; src }
    | None -> ()
  done;
  Run.writer_finish out
