(** External merge sort of a batch into a sorted {!Run.t}
    (Algorithm 3, line 6; cost model of Lemma 6).

    Batches within the memory budget are sorted in memory and written
    once; larger batches go through temporary sorted runs and multi-way
    merge passes with fan-in bounded by the buffer budget. *)

type report = {
  passes : int;    (** merge passes performed; 0 when sorted in memory *)
  temp_runs : int; (** temporary runs created (all freed on return) *)
}

(** [sort ?memory_elements ?observe dev batch] sorts [batch] into a new
    run on [dev]. [memory_elements] is the in-memory working budget in
    elements (default: unbounded, i.e. always in-memory); it is clamped
    below to two blocks so the merge phase always has buffers.
    [observe i v] sees every output element in order at no extra I/O
    (used to build partition summaries, Section 2.1). Raises
    [Invalid_argument] on an empty batch. *)
val sort :
  ?memory_elements:int ->
  ?observe:(int -> int -> unit) ->
  Block_device.t ->
  int array ->
  Run.t * report
