(** Fixed-capacity O(1) LRU map from block addresses to payloads —
    the block device's optional buffer pool. *)

type t

val create : capacity:int -> t
val size : t -> int
val capacity : t -> int

(** Lookup; refreshes recency, counts a hit or miss. *)
val find : t -> int -> int array option

(** Membership without touching recency or statistics. *)
val mem : t -> int -> bool

(** Insert or refresh; evicts the least recently used entry at
    capacity. *)
val put : t -> int -> int array -> unit

val remove : t -> int -> unit
val clear : t -> unit
val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
