(** Sorted on-disk runs.

    A run stores a non-empty ascending sequence of integers across
    contiguous blocks of a {!Block_device.t}. Random access goes through
    a one-block cache, implementing the paper's Section 2.4 optimization:
    once a search has narrowed to one block, further probes in that block
    cost no I/O. *)

type t

(** Write a sorted array as a new run (sequential writes, one per
    block). Raises [Invalid_argument] if the array is empty or not
    sorted ascending. *)
val of_sorted_array : Block_device.t -> int array -> t

(** Re-attach to a run already on the device (recovery). Raises
    [Invalid_argument] if the address range is not allocated. *)
val of_existing : Block_device.t -> addr:int -> length:int -> t

val length : t -> int
val nblocks : t -> int
val first_block : t -> int
val device : t -> Block_device.t

(** Reclaim the run's blocks. Further access raises
    [Invalid_argument]. Idempotent. *)
val free : t -> unit

(** Drop the one-block cache (e.g. to charge full I/O to a fresh query). *)
val drop_cache : t -> unit

(** Disable/enable the one-block cache — the ablation switch for the
    Section 2.4 query optimization. Enabled by default. *)
val set_cache_enabled : t -> bool -> unit

(** [get t i] is the element at index [i] (0-based). One block read
    unless the containing block is cached. *)
val get : t -> int -> int

(** [rank t v] = number of elements ≤ [v]; binary search over the run. *)
val rank : t -> int -> int

(** [rank_between t ~lo ~hi v] is [rank t v] when the answer is known to
    lie in [\[lo, hi\]]; only probes inside the range (Algorithm 8 uses
    summary entries to bound the search). *)
val rank_between : t -> lo:int -> hi:int -> int -> int

(** Read [len] elements starting at [pos]. *)
val read_range : t -> pos:int -> len:int -> int array

val to_array : t -> int array

(** Streaming writers build a run with one block of buffer memory.
    Values must be pushed ascending; the declared [length] must be met
    exactly before [writer_finish]. *)
type writer

val writer : Block_device.t -> length:int -> writer
val writer_push : writer -> int -> unit
val writer_finish : writer -> t

(** Sequential cursors for k-way merging; each cursor owns a one-block
    readahead buffer and reports its reads as sequential I/O. *)
type cursor

val cursor : t -> cursor
val cursor_peek : cursor -> int option
val cursor_advance : cursor -> unit
val cursor_next : cursor -> int option
