(* A sorted run: [length] elements stored ascending across
   [ceil(length / B)] contiguous blocks of a block device.

   Random access goes through a one-block cache.  This implements the
   paper's query optimization (Section 2.4): once a binary search has
   narrowed to a single disk block, the block is held in memory and
   further probes cost no I/O. *)

type t = {
  dev : Block_device.t;
  addr : int;
  nblocks : int;
  length : int;
  mutable cache_addr : int; (* absolute block address held in [cache]; -1 = none *)
  mutable cache : int array;
  mutable cache_enabled : bool; (* ablation switch for the Section 2.4 optimization *)
  mutable freed : bool;
}

let blocks_needed ~block_size n = (n + block_size - 1) / block_size

let of_sorted_array dev elements =
  let n = Array.length elements in
  if n = 0 then invalid_arg "Run.of_sorted_array: empty run";
  if not (Hsq_util.Sorted.is_sorted elements) then invalid_arg "Run.of_sorted_array: not sorted";
  let bsize = Block_device.block_size dev in
  let nblocks = blocks_needed ~block_size:bsize n in
  let addr = Block_device.alloc dev nblocks in
  let block = Array.make bsize 0 in
  for b = 0 to nblocks - 1 do
    let off = b * bsize in
    let len = min bsize (n - off) in
    Array.blit elements off block 0 len;
    (* Pad the tail of the final block with the largest element so every
       slot is well-defined (padding is never exposed: accessors bound
       indices by [length]). *)
    if len < bsize then Array.fill block len (bsize - len) elements.(n - 1);
    Block_device.write_block dev ~addr:(addr + b) block
  done;
  { dev; addr; nblocks; length = n; cache_addr = -1; cache = [||]; cache_enabled = true; freed = false }

(* Re-attach to a run already present on the device (recovery path).
   Contents are trusted to be sorted; Persist.load verifies per-block
   monotonicity before serving queries. *)
let of_existing dev ~addr ~length =
  if length <= 0 then invalid_arg "Run.of_existing: length must be positive";
  let bsize = Block_device.block_size dev in
  let nblocks = blocks_needed ~block_size:bsize length in
  if addr < 0 || addr + nblocks > Block_device.allocated_blocks dev then
    invalid_arg "Run.of_existing: blocks not present on device";
  { dev; addr; nblocks; length; cache_addr = -1; cache = [||]; cache_enabled = true; freed = false }

let length t = t.length
let nblocks t = t.nblocks
let first_block t = t.addr
let device t = t.dev

let check_live t op = if t.freed then invalid_arg ("Run." ^ op ^ ": run has been freed")

let free t =
  if not t.freed then begin
    Block_device.free t.dev ~addr:t.addr ~nblocks:t.nblocks;
    t.freed <- true;
    t.cache_addr <- -1;
    t.cache <- [||]
  end

let drop_cache t =
  t.cache_addr <- -1;
  t.cache <- [||]

let set_cache_enabled t enabled =
  t.cache_enabled <- enabled;
  if not enabled then drop_cache t

(* Fetch the block containing element index [i], through the cache. *)
let block_for t i =
  let bsize = Block_device.block_size t.dev in
  let abs = t.addr + (i / bsize) in
  if not t.cache_enabled then Block_device.read_block t.dev ~addr:abs
  else begin
    if t.cache_addr <> abs then begin
      t.cache <- Block_device.read_block t.dev ~addr:abs;
      t.cache_addr <- abs
    end;
    t.cache
  end

let get t i =
  check_live t "get";
  if i < 0 || i >= t.length then invalid_arg "Run.get: index out of bounds";
  let bsize = Block_device.block_size t.dev in
  (block_for t i).(i mod bsize)

(* First index in [lo, hi) whose element is > v, i.e. the number of
   elements <= v given that the answer lies in [lo, hi].  Each probe may
   read one block; probes within the cached block are free. *)
let rank_between t ~lo ~hi v =
  check_live t "rank_between";
  if lo < 0 || hi > t.length || lo > hi then invalid_arg "Run.rank_between: bad range";
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if get t mid <= v then go (mid + 1) hi else go lo mid
  in
  go lo hi

let rank t v = rank_between t ~lo:0 ~hi:t.length v

let read_range t ~pos ~len =
  check_live t "read_range";
  if pos < 0 || len < 0 || pos + len > t.length then invalid_arg "Run.read_range: bad range";
  Array.init len (fun i -> get t (pos + i))

let to_array t = read_range t ~pos:0 ~len:t.length

(* Streaming writer: values must be pushed in ascending order; blocks are
   flushed as they fill, so only one block of buffer memory is needed no
   matter how large the run — exactly the memory profile of an external
   merge. *)
type writer = {
  wdev : Block_device.t;
  waddr : int;
  expected : int;
  mutable written : int;
  wbuf : int array;
  mutable wfill : int;
  mutable last : int;
  mutable finished : bool;
}

let writer dev ~length =
  if length <= 0 then invalid_arg "Run.writer: length must be positive";
  let bsize = Block_device.block_size dev in
  let nblocks = blocks_needed ~block_size:bsize length in
  let addr = Block_device.alloc dev nblocks in
  {
    wdev = dev;
    waddr = addr;
    expected = length;
    written = 0;
    wbuf = Array.make bsize 0;
    wfill = 0;
    last = min_int;
    finished = false;
  }

let writer_flush w ~pad =
  if w.wfill > 0 then begin
    if pad && w.wfill < Array.length w.wbuf then
      Array.fill w.wbuf w.wfill (Array.length w.wbuf - w.wfill) w.last;
    let block_index = (w.written - w.wfill) / Array.length w.wbuf in
    Block_device.write_block w.wdev ~addr:(w.waddr + block_index) w.wbuf;
    w.wfill <- 0
  end

let writer_push w v =
  if w.finished then invalid_arg "Run.writer_push: writer already finished";
  if w.written >= w.expected then invalid_arg "Run.writer_push: more values than declared";
  if v < w.last then invalid_arg "Run.writer_push: values must be ascending";
  w.wbuf.(w.wfill) <- v;
  w.wfill <- w.wfill + 1;
  w.written <- w.written + 1;
  w.last <- v;
  if w.wfill = Array.length w.wbuf then writer_flush w ~pad:false

let writer_finish w =
  if w.finished then invalid_arg "Run.writer_finish: already finished";
  if w.written <> w.expected then
    invalid_arg
      (Printf.sprintf "Run.writer_finish: wrote %d of %d declared values" w.written w.expected);
  writer_flush w ~pad:true;
  w.finished <- true;
  let bsize = Block_device.block_size w.wdev in
  {
    dev = w.wdev;
    addr = w.waddr;
    nblocks = blocks_needed ~block_size:bsize w.expected;
    length = w.expected;
    cache_addr = -1;
    cache = [||];
    cache_enabled = true;
    freed = false;
  }

(* Sequential cursor used by merges; owns its own block buffer so it does
   not disturb the run's random-access cache. *)
type cursor = {
  run : t;
  mutable pos : int;
  mutable buf : int array;
  mutable buf_block : int; (* relative block index loaded in [buf]; -1 = none *)
}

let cursor t =
  check_live t "cursor";
  { run = t; pos = 0; buf = [||]; buf_block = -1 }

let cursor_peek c =
  if c.pos >= c.run.length then None
  else begin
    let bsize = Block_device.block_size c.run.dev in
    let b = c.pos / bsize in
    if c.buf_block <> b then begin
      c.buf <- Block_device.read_block ~hint:true c.run.dev ~addr:(c.run.addr + b);
      c.buf_block <- b
    end;
    Some c.buf.(c.pos mod bsize)
  end

let cursor_advance c = if c.pos < c.run.length then c.pos <- c.pos + 1

let cursor_next c =
  match cursor_peek c with
  | None -> None
  | Some v ->
    cursor_advance c;
    Some v
