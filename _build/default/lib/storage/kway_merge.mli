(** Single-pass multi-way merge of sorted runs (Algorithm 3, line 10).

    Memory footprint is one block buffer per input plus one output
    buffer; every input block is read once sequentially and every output
    block written once. *)

(** [merge ?observe dev runs] merges at least two runs living on [dev]
    into a new run on [dev]. [observe i v] is called for each output
    element [v] at output index [i], in order — partition summaries are
    built through this hook so they cost no additional I/O (Section 2.1).
    Inputs are not freed (the caller — the level index — frees them once
    the merged partition is installed). Raises [Invalid_argument] on
    fewer than two runs or on a run from another device. *)
val merge : ?observe:(int -> int -> unit) -> Block_device.t -> Run.t list -> Run.t
