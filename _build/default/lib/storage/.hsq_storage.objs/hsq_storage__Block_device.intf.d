lib/storage/block_device.mli: Io_stats
