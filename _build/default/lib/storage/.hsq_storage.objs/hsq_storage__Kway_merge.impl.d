lib/storage/kway_merge.ml: Array List Run
