lib/storage/run.ml: Array Block_device Hsq_util Printf
