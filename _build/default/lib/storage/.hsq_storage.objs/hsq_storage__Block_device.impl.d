lib/storage/block_device.ml: Array Bytes In_channel Int64 Io_stats Lru Out_channel Printf Sys
