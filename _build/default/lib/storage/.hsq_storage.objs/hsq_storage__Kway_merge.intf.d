lib/storage/kway_merge.mli: Block_device Run
