lib/storage/external_sort.ml: Array Block_device Kway_merge List Run
