lib/storage/external_sort.mli: Block_device Run
