lib/storage/run.mli: Block_device
