lib/storage/lru.mli:
