(* Per-device I/O accounting.  The paper's cost model counts disk block
   accesses and distinguishes the cheap sequential I/Os used by loading
   and merging from the expensive random I/Os used by queries
   (Section 2.4).  A read is classified as sequential when it targets the
   block immediately after the previously read one. *)

type counters = {
  reads : int;
  seq_reads : int;
  rand_reads : int;
  writes : int;
}

type t = {
  mutable reads : int;
  mutable seq_reads : int;
  mutable rand_reads : int;
  mutable writes : int;
  mutable last_read_addr : int;
}

let create () = { reads = 0; seq_reads = 0; rand_reads = 0; writes = 0; last_read_addr = min_int }

let reset t =
  t.reads <- 0;
  t.seq_reads <- 0;
  t.rand_reads <- 0;
  t.writes <- 0;
  t.last_read_addr <- min_int

(* [hint] overrides the adjacency heuristic: a k-way merge interleaves
   reads of several runs, but on a real disk each run is consumed through
   a sequential readahead buffer, so those reads are sequential. *)
let note_read ?hint t addr =
  t.reads <- t.reads + 1;
  let sequential =
    match hint with
    | Some s -> s
    | None -> addr = t.last_read_addr + 1
  in
  if sequential then t.seq_reads <- t.seq_reads + 1 else t.rand_reads <- t.rand_reads + 1;
  t.last_read_addr <- addr

let note_write t _addr = t.writes <- t.writes + 1

let snapshot t = { reads = t.reads; seq_reads = t.seq_reads; rand_reads = t.rand_reads; writes = t.writes }

let zero = { reads = 0; seq_reads = 0; rand_reads = 0; writes = 0 }

let diff (after : counters) (before : counters) =
  {
    reads = after.reads - before.reads;
    seq_reads = after.seq_reads - before.seq_reads;
    rand_reads = after.rand_reads - before.rand_reads;
    writes = after.writes - before.writes;
  }

let add (a : counters) (b : counters) =
  {
    reads = a.reads + b.reads;
    seq_reads = a.seq_reads + b.seq_reads;
    rand_reads = a.rand_reads + b.rand_reads;
    writes = a.writes + b.writes;
  }

let total (c : counters) = c.reads + c.writes

let measure t f =
  let before = snapshot t in
  let result = f () in
  (result, diff (snapshot t) before)

let pp ppf (c : counters) =
  Format.fprintf ppf "reads=%d (seq=%d rand=%d) writes=%d" c.reads c.seq_reads c.rand_reads c.writes
