(** Simulated block device with exact I/O accounting.

    Blocks hold [block_size] OCaml [int]s. Two backends are provided:
    an in-memory table (default for tests and benches — deterministic
    and fast) and a file-backed store that persists each block as
    [8 * block_size] bytes of big-endian integers.

    Addresses are plain block indices handed out by a bump allocator;
    [free] only reclaims capacity accounting (the simulator never reuses
    addresses, which keeps sequential-I/O classification unambiguous). *)

exception Device_error of string

type op = Read | Write
type t

(** [create_memory ~block_size ()] — in-memory backend. *)
val create_memory : block_size:int -> unit -> t

(** [create_file ~block_size ~path ()] — file backend; truncates [path]. *)
val create_file : block_size:int -> path:string -> unit -> t

(** [open_file ~block_size ~path ()] reopens an existing device file
    without truncating; the allocator resumes after the blocks already
    on disk. Raises {!Device_error} if the file is missing or not a
    whole number of blocks. *)
val open_file : block_size:int -> path:string -> unit -> t

(** Close file handles (no-op for the memory backend). *)
val close : t -> unit

(** Backing file path, if any. *)
val path : t -> string option

val block_size : t -> int
val stats : t -> Io_stats.t

(** Total blocks ever allocated. *)
val allocated_blocks : t -> int

(** Allocated minus freed blocks — the live footprint. *)
val live_blocks : t -> int

(** [alloc t n] reserves [n] contiguous blocks, returning the first
    address. *)
val alloc : t -> int -> int

(** Mark a contiguous range reclaimable. Memory backend drops contents;
    reading a freed block raises {!Device_error}. *)
val free : t -> addr:int -> nblocks:int -> unit

(** [write_block t ~addr payload] writes exactly one block.
    Raises [Invalid_argument] if [payload] is not [block_size] long or
    [addr] is unallocated. *)
val write_block : t -> addr:int -> int array -> unit

(** [read_block t ~addr] returns a fresh copy of the block. [hint]
    forces the sequential/random classification of the read (used by
    run cursors, whose per-run readahead is sequential on a real disk
    even when several runs are consumed in an interleaved merge). *)
val read_block : ?hint:bool -> t -> addr:int -> int array

(** {2 Buffer pool}

    An optional LRU pool of whole blocks in front of the backend — an
    OS-page-cache stand-in. Pool hits cost no device I/O (they appear
    only in {!pool_stats}); writes are write-through; freeing blocks
    invalidates them. *)

val enable_pool : t -> capacity:int -> unit
val disable_pool : t -> unit

(** [(hits, misses)] since the pool was enabled, if one is active. *)
val pool_stats : t -> (int * int) option

(** Install (or clear) a fault hook for failure-injection tests: when the
    hook returns [true] for an (operation, address) pair the operation
    raises {!Device_error} instead of executing. *)
val set_fault : t -> (op -> int -> bool) option -> unit
