test/test_qdigest.mli:
