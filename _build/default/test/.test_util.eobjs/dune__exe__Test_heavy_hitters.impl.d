test/test_heavy_hitters.ml: Alcotest Array Hashtbl Hsq Hsq_hist Hsq_sketch Hsq_storage Hsq_util Hsq_workload List Printf QCheck QCheck_alcotest
