test/test_ckms.mli:
