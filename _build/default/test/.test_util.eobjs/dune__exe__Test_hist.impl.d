test/test_hist.ml: Alcotest Array Gen Hsq_hist Hsq_storage Hsq_util List Printf QCheck QCheck_alcotest
