test/test_integration.ml: Alcotest Array Filename Hsq Hsq_hist Hsq_storage Hsq_workload List Printf Sys
