test/test_gk.ml: Alcotest Array Gen Gk Hsq_sketch Hsq_util List Printf QCheck QCheck_alcotest
