test/test_fuzz.ml: Alcotest Array Filename Fun Hashtbl Hsq Hsq_hist Hsq_storage Hsq_util Hsq_workload List Printf String Sys
