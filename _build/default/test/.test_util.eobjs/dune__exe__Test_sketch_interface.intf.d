test/test_sketch_interface.mli:
