test/test_ckms.ml: Alcotest Array Ckms Gen Gk Hsq_sketch Hsq_util List Printf QCheck QCheck_alcotest
