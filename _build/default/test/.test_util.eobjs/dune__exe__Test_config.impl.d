test/test_config.ml: Alcotest Hsq QCheck QCheck_alcotest
