test/test_sampler.ml: Alcotest Array Gen Hsq_sketch Hsq_util List Printf QCheck QCheck_alcotest Sampler
