test/test_workload.ml: Alcotest Array Gen Hsq_util Hsq_workload List Printf QCheck QCheck_alcotest
