test/test_baselines.ml: Alcotest Array Hsq Hsq_hist Hsq_storage Hsq_util Hsq_workload List Printf
