test/test_persist.ml: Alcotest Array Bytes Char Filename Fun Hsq Hsq_hist Hsq_storage Hsq_util Hsq_workload In_channel List Out_channel Printf Str String Sys Unix
