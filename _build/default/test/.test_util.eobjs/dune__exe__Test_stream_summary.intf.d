test/test_stream_summary.mli:
