test/test_stream_summary.ml: Alcotest Array Gen Hsq Hsq_sketch Hsq_util List Printf QCheck QCheck_alcotest
