test/test_union_summary.ml: Alcotest Array Hsq Hsq_hist Hsq_sketch Hsq_storage Hsq_util List Printf QCheck QCheck_alcotest
