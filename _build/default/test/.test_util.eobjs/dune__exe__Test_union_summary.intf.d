test/test_union_summary.mli:
