test/test_heavy_hitters.mli:
