test/test_storage.ml: Alcotest Array Block_device External_sort Filename Gen Hsq_storage Hsq_util Io_stats Kway_merge List Lru Printf QCheck QCheck_alcotest Run Sys
