test/test_sketch_interface.ml: Alcotest Array Ckms Exact Gen Gk Hsq_sketch Hsq_util List Printf QCheck QCheck_alcotest Qdigest Quantile_sketch Sampler
