test/test_engine.ml: Alcotest Array Filename Fun Hsq Hsq_hist Hsq_storage Hsq_util Hsq_workload List Printf QCheck QCheck_alcotest Sys
