test/test_gk.mli:
