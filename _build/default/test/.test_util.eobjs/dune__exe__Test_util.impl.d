test/test_util.ml: Alcotest Array Gen Hsq_util List Parallel Printf QCheck QCheck_alcotest Sorted Splitmix Stats Xoshiro
