(* Tests for the common sketch interface: the packed existential must
   behave identically to the direct module for every implementation,
   and the phi-quantile helper must follow Definition 1. *)

open Hsq_sketch

let packs () =
  [
    ("gk", Quantile_sketch.Packed (Gk.sketch, Gk.create ~epsilon:0.02));
    ("ckms", Quantile_sketch.Packed (Ckms.sketch, Ckms.create ~epsilon:0.02 ()));
    ("qdigest", Quantile_sketch.Packed (Qdigest.sketch, Qdigest.create ~bits:20 ~k:200));
    ("sampler", Quantile_sketch.Packed (Sampler.sketch, Sampler.create ~buffers:8 ~buffer_size:128 ()));
    ("exact", Quantile_sketch.Packed (Exact.sketch, Exact.create ()));
  ]

let test_packed_round_trip () =
  let rng = Hsq_util.Xoshiro.create 71 in
  let data = Array.init 20_000 (fun _ -> Hsq_util.Xoshiro.int rng (1 lsl 20)) in
  let sorted = Array.copy data in
  Array.sort compare sorted;
  List.iter
    (fun (name, packed) ->
      Array.iter (Quantile_sketch.insert packed) data;
      Alcotest.(check int) (name ^ " count") 20_000 (Quantile_sketch.count packed);
      Alcotest.(check bool) (name ^ " memory positive") true (Quantile_sketch.memory_words packed > 0);
      (* every implementation must land within 5% rank error here *)
      let v = Quantile_sketch.quantile packed 0.5 in
      let r = Hsq_util.Sorted.rank sorted v in
      Alcotest.(check bool)
        (Printf.sprintf "%s median rank %d within 5%%" name r)
        true
        (abs (r - 10_000) <= 1_000);
      let est = Quantile_sketch.rank_of packed sorted.(10_000) in
      Alcotest.(check bool)
        (Printf.sprintf "%s rank_of within 10%%" name)
        true
        (abs (est - 10_000) <= 2_000))
    (packs ())

let test_quantile_validation () =
  let packed = Quantile_sketch.Packed (Gk.sketch, Gk.create ~epsilon:0.1) in
  Alcotest.check_raises "empty"
    (Invalid_argument "Quantile_sketch.quantile: empty sketch") (fun () ->
      ignore (Quantile_sketch.quantile packed 0.5));
  Quantile_sketch.insert packed 1;
  Alcotest.check_raises "bad phi"
    (Invalid_argument "Quantile_sketch.quantile: phi not in (0,1]") (fun () ->
      ignore (Quantile_sketch.quantile packed 0.0))

let test_quantile_definition_1 () =
  (* With the exact sketch, the helper must implement Definition 1
     verbatim: smallest element with rank >= ceil(phi * n). *)
  let packed = Quantile_sketch.Packed (Exact.sketch, Exact.of_array [| 10; 20; 20; 30 |]) in
  Alcotest.(check int) "phi=0.25" 10 (Quantile_sketch.quantile packed 0.25);
  Alcotest.(check int) "phi=0.5" 20 (Quantile_sketch.quantile packed 0.5);
  Alcotest.(check int) "phi=0.75" 20 (Quantile_sketch.quantile packed 0.75);
  Alcotest.(check int) "phi=1.0" 30 (Quantile_sketch.quantile packed 1.0)

let prop_error_bound_generic =
  QCheck.Test.make ~name:"every sketch within its own advertised error bound" ~count:25
    QCheck.(list_of_size Gen.(10 -- 400) (int_bound ((1 lsl 20) - 1)))
    (fun l ->
      let data = Array.of_list l in
      let sorted = Array.copy data in
      Array.sort compare sorted;
      let n = Array.length data in
      List.for_all
        (fun (name, packed) ->
          (* the sampler is probabilistic: exempt it from the hard check *)
          if name = "sampler" then true
          else begin
            Array.iter (Quantile_sketch.insert packed) data;
            let bound =
              (Quantile_sketch.error_bound packed *. float_of_int n) +. 2.0
            in
            List.for_all
              (fun r ->
                let v = Quantile_sketch.query_rank packed r in
                let hi = Hsq_util.Sorted.rank sorted v in
                let lo = min hi (Hsq_util.Sorted.rank_strict sorted v + 1) in
                let e = if r < lo then lo - r else if r > hi then r - hi else 0 in
                float_of_int e <= bound)
              [ 1; (n + 1) / 2; n ]
          end)
        (packs ()))

let () =
  Alcotest.run "sketch_interface"
    [
      ( "packed",
        [
          Alcotest.test_case "round trip all sketches" `Quick test_packed_round_trip;
          Alcotest.test_case "validation" `Quick test_quantile_validation;
          Alcotest.test_case "Definition 1" `Quick test_quantile_definition_1;
          QCheck_alcotest.to_alcotest prop_error_bound_generic;
        ] );
    ]
