(* Tests for the randomized MRL/RANDOM-style sampler.  Its guarantees
   are probabilistic, so accuracy checks use generous multiples of the
   nominal 1/buffer_size error and fixed seeds. *)

open Hsq_sketch

let rank_error sorted ~rank ~value =
  let upper = Hsq_util.Sorted.rank sorted value in
  let lower = min upper (Hsq_util.Sorted.rank_strict sorted value + 1) in
  if rank < lower then lower - rank else if rank > upper then rank - upper else 0

let test_accuracy_random () =
  let rng = Hsq_util.Xoshiro.create 31 in
  let n = 40_000 in
  let data = Array.init n (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000) in
  let sp = Sampler.create ~seed:1 ~buffers:10 ~buffer_size:200 () in
  Array.iter (Sampler.insert sp) data;
  let sorted = Array.copy data in
  Array.sort compare sorted;
  (* nominal error n/s = 200; allow 10x for randomness *)
  let slack = 10 * (n / 200) in
  List.iter
    (fun phi ->
      let r = int_of_float (ceil (phi *. float_of_int n)) in
      let v = Sampler.query_rank sp r in
      let e = rank_error sorted ~rank:r ~value:v in
      Alcotest.(check bool) (Printf.sprintf "phi=%.2f err %d <= %d" phi e slack) true (e <= slack))
    [ 0.01; 0.25; 0.5; 0.75; 0.99 ]

let test_accuracy_sorted_input () =
  let n = 30_000 in
  let data = Array.init n (fun i -> i) in
  let sp = Sampler.create ~seed:2 ~buffers:10 ~buffer_size:200 () in
  Array.iter (Sampler.insert sp) data;
  let slack = 10 * (n / 200) in
  List.iter
    (fun phi ->
      let r = int_of_float (ceil (phi *. float_of_int n)) in
      let v = Sampler.query_rank sp r in
      Alcotest.(check bool)
        (Printf.sprintf "phi=%.2f |v-r| = %d" phi (abs (v + 1 - r)))
        true
        (abs (v + 1 - r) <= slack))
    [ 0.1; 0.5; 0.9 ]

let test_memory_stays_bounded () =
  let rng = Hsq_util.Xoshiro.create 32 in
  let sp = Sampler.create ~seed:3 ~buffers:8 ~buffer_size:64 () in
  let cap = 10 + (64 * 9) in
  for i = 1 to 100_000 do
    Sampler.insert sp (Hsq_util.Xoshiro.int rng max_int);
    if i mod 9973 = 0 then
      Alcotest.(check bool) "memory bounded" true (Sampler.memory_words sp <= cap)
  done

let test_determinism_per_seed () =
  let mk () =
    let sp = Sampler.create ~seed:77 ~buffers:6 ~buffer_size:32 () in
    for i = 1 to 10_000 do
      Sampler.insert sp ((i * 2654435761) land 0xFFFFF)
    done;
    List.map (fun r -> Sampler.query_rank sp r) [ 1; 100; 5000; 9999 ]
  in
  Alcotest.(check (list int)) "same seed, same answers" (mk ()) (mk ())

let test_small_streams () =
  let sp = Sampler.create ~seed:5 ~buffers:4 ~buffer_size:8 () in
  Sampler.insert sp 5;
  Alcotest.(check int) "single element" 5 (Sampler.query_rank sp 1);
  Sampler.insert sp 3;
  let v = Sampler.query_rank sp 1 in
  Alcotest.(check bool) "one of the two" true (v = 3 || v = 5)

let test_validation () =
  Alcotest.check_raises "buffers < 2" (Invalid_argument "Sampler.create: need at least 2 buffers")
    (fun () -> ignore (Sampler.create ~buffers:1 ~buffer_size:8 ()));
  let sp = Sampler.create ~buffers:2 ~buffer_size:8 () in
  Alcotest.check_raises "empty" (Invalid_argument "Sampler.query_rank: empty sketch") (fun () ->
      ignore (Sampler.query_rank sp 1))

let test_count_tracks_n () =
  let sp = Sampler.create ~seed:6 ~buffers:4 ~buffer_size:16 () in
  for i = 1 to 12_345 do
    Sampler.insert sp i
  done;
  Alcotest.(check int) "count" 12_345 (Sampler.count sp)

let prop_query_within_value_range =
  QCheck.Test.make ~name:"sampler answers inside observed value range" ~count:60
    QCheck.(list_of_size Gen.(1 -- 2000) (int_bound 100_000))
    (fun l ->
      let sp = Sampler.create ~seed:9 ~buffers:5 ~buffer_size:16 () in
      List.iter (Sampler.insert sp) l;
      let lo = List.fold_left min max_int l and hi = List.fold_left max min_int l in
      let n = List.length l in
      List.for_all
        (fun r ->
          let v = Sampler.query_rank sp r in
          v >= lo && v <= hi)
        [ 1; (n + 1) / 2; n ])

let () =
  Alcotest.run "sampler"
    [
      ( "accuracy",
        [
          Alcotest.test_case "random input" `Quick test_accuracy_random;
          Alcotest.test_case "sorted input" `Quick test_accuracy_sorted_input;
        ] );
      ( "structure",
        [
          Alcotest.test_case "memory bounded" `Quick test_memory_stays_bounded;
          Alcotest.test_case "deterministic per seed" `Quick test_determinism_per_seed;
          Alcotest.test_case "small streams" `Quick test_small_streams;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "count" `Quick test_count_tracks_n;
          QCheck_alcotest.to_alcotest prop_query_within_value_range;
        ] );
    ]
