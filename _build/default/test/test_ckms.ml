(* Tests for the CKMS biased-quantiles sketch: rank-dependent error
   bounds (fine at the chosen tail), invariant preservation, and the
   memory advantage over uniform GK at equal tail accuracy. *)

open Hsq_sketch

let rank_error sorted ~rank ~value =
  let upper = Hsq_util.Sorted.rank sorted value in
  let lower = min upper (Hsq_util.Sorted.rank_strict sorted value + 1) in
  if rank < lower then lower - rank else if rank > upper then rank - upper else 0

let check_biased_bound ~bias ~epsilon data =
  let ck = Ckms.create ~bias ~epsilon () in
  Array.iter (Ckms.insert ck) data;
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let n = Array.length data in
  for r = 1 to n do
    if r mod 37 = 0 || r = 1 || r = n || r > n - 100 then begin
      let v = Ckms.query_rank ck r in
      let e = rank_error sorted ~rank:r ~value:v in
      let allowance = Ckms.error_allowance ck r +. 1.0 in
      if float_of_int e > allowance then
        Alcotest.failf "rank %d/%d: error %d > allowance %.1f" r n e allowance
    end
  done

let test_high_biased_tail_accuracy () =
  let rng = Hsq_util.Xoshiro.create 61 in
  check_biased_bound ~bias:Ckms.High_biased ~epsilon:0.05
    (Array.init 30_000 (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000))

let test_low_biased_head_accuracy () =
  let rng = Hsq_util.Xoshiro.create 62 in
  check_biased_bound ~bias:Ckms.Low_biased ~epsilon:0.05
    (Array.init 30_000 (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000))

let test_uniform_matches_gk_semantics () =
  let rng = Hsq_util.Xoshiro.create 63 in
  check_biased_bound ~bias:Ckms.Uniform ~epsilon:0.02
    (Array.init 20_000 (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000))

let test_sorted_and_adversarial_inputs () =
  List.iter
    (fun data -> check_biased_bound ~bias:Ckms.High_biased ~epsilon:0.05 data)
    [
      Array.init 10_000 (fun i -> i);
      Array.init 10_000 (fun i -> 10_000 - i);
      Array.make 5_000 7;
      Array.init 5_000 (fun i -> i mod 3);
    ]

let test_tail_is_sharp () =
  (* High-biased: the maximum (rank n) must be answered exactly, and
     p999 within ~eps*(n/1000). *)
  let rng = Hsq_util.Xoshiro.create 64 in
  let n = 50_000 in
  let data = Array.init n (fun _ -> Hsq_util.Xoshiro.int rng 10_000_000) in
  let ck = Ckms.create ~bias:Ckms.High_biased ~epsilon:0.05 () in
  Array.iter (Ckms.insert ck) data;
  let sorted = Array.copy data in
  Array.sort compare sorted;
  Alcotest.(check int) "max exact" sorted.(n - 1) (Ckms.query_rank ck n);
  let r999 = int_of_float (ceil (0.999 *. float_of_int n)) in
  let e = rank_error sorted ~rank:r999 ~value:(Ckms.query_rank ck r999) in
  Alcotest.(check bool) (Printf.sprintf "p999 error %d small" e) true (e <= 7)

let test_memory_advantage_over_uniform () =
  (* For equal p99.9 accuracy a uniform sketch needs eps ~ 1e-4 while
     high-biased needs eps = 0.1; the biased sketch must be much
     smaller. *)
  let rng = Hsq_util.Xoshiro.create 65 in
  let n = 50_000 in
  let data = Array.init n (fun _ -> Hsq_util.Xoshiro.int rng 10_000_000) in
  let biased = Ckms.create ~bias:Ckms.High_biased ~epsilon:0.1 () in
  let uniform = Gk.create ~epsilon:0.0001 in
  Array.iter
    (fun v ->
      Ckms.insert biased v;
      Gk.insert uniform v)
    data;
  Alcotest.(check bool)
    (Printf.sprintf "biased %d words << uniform %d words" (Ckms.memory_words biased)
       (Gk.memory_words uniform))
    true
    (Ckms.memory_words biased * 5 < Gk.memory_words uniform)

let test_space_stays_modest () =
  let rng = Hsq_util.Xoshiro.create 66 in
  let ck = Ckms.create ~bias:Ckms.High_biased ~epsilon:0.05 () in
  for _ = 1 to 100_000 do
    Ckms.insert ck (Hsq_util.Xoshiro.int rng max_int)
  done;
  (* O((1/eps) * log(eps n) * log n)-ish; generous concrete cap *)
  Alcotest.(check bool) (Printf.sprintf "size %d bounded" (Ckms.size ck)) true (Ckms.size ck < 4_000)

let test_invariant_holds () =
  let rng = Hsq_util.Xoshiro.create 67 in
  let ck = Ckms.create ~bias:Ckms.High_biased ~epsilon:0.1 () in
  for _ = 1 to 10_000 do
    Ckms.insert ck (Hsq_util.Xoshiro.int rng 1_000)
  done;
  List.iter
    (fun (_, rmin, rmax) ->
      (* g + delta <= f(rmin, n) within integer slack *)
      let thr = Ckms.error_allowance ck rmin *. 2.0 in
      Alcotest.(check bool)
        (Printf.sprintf "tuple rank %d window %d <= %.1f" rmin (rmax - rmin) thr)
        true
        (float_of_int (rmax - rmin) <= thr))
    (Ckms.dump ck)

let test_validation_and_edges () =
  Alcotest.check_raises "bad eps" (Invalid_argument "Ckms.create: epsilon not in (0,1)")
    (fun () -> ignore (Ckms.create ~epsilon:0.0 ()));
  let ck = Ckms.create ~epsilon:0.1 () in
  Alcotest.check_raises "empty" (Invalid_argument "Ckms.query_rank: empty sketch") (fun () ->
      ignore (Ckms.query_rank ck 1));
  Ckms.insert ck 5;
  Alcotest.(check int) "single element" 5 (Ckms.query_rank ck 1);
  Alcotest.(check int) "quantile clamps" 5 (Ckms.quantile ck 1.0)

let prop_biased_bound_random =
  QCheck.Test.make ~name:"CKMS high-biased bound on random streams" ~count:40
    QCheck.(list_of_size Gen.(1 -- 500) (int_bound 10_000))
    (fun l ->
      let data = Array.of_list l in
      let ck = Ckms.create ~bias:Ckms.High_biased ~epsilon:0.1 () in
      Array.iter (Ckms.insert ck) data;
      let sorted = Array.copy data in
      Array.sort compare sorted;
      let n = Array.length data in
      let ok = ref true in
      for r = 1 to n do
        let v = Ckms.query_rank ck r in
        if float_of_int (rank_error sorted ~rank:r ~value:v) > Ckms.error_allowance ck r +. 1.0
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "ckms"
    [
      ( "bounds",
        [
          Alcotest.test_case "high-biased tail" `Quick test_high_biased_tail_accuracy;
          Alcotest.test_case "low-biased head" `Quick test_low_biased_head_accuracy;
          Alcotest.test_case "uniform" `Quick test_uniform_matches_gk_semantics;
          Alcotest.test_case "adversarial inputs" `Quick test_sorted_and_adversarial_inputs;
          Alcotest.test_case "tail sharp (max exact, p999 tight)" `Quick test_tail_is_sharp;
          QCheck_alcotest.to_alcotest prop_biased_bound_random;
        ] );
      ( "structure",
        [
          Alcotest.test_case "memory advantage vs uniform GK" `Quick
            test_memory_advantage_over_uniform;
          Alcotest.test_case "space modest" `Slow test_space_stays_modest;
          Alcotest.test_case "invariant" `Quick test_invariant_holds;
          Alcotest.test_case "validation + edges" `Quick test_validation_and_edges;
        ] );
    ]
