(* Tests for the heavy-hitters extension: the SpaceSaving and
   Misra-Gries substrates, and the union engine's completeness /
   soundness guarantees against an exact frequency oracle. *)

module SS = Hsq_sketch.Spacesaving
module MG = Hsq_sketch.Misra_gries
module HH = Hsq.Heavy_hitters

(* Exact frequency oracle. *)
let frequencies data =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun v ->
      match Hashtbl.find_opt tbl v with
      | Some c -> incr c
      | None -> Hashtbl.add tbl v (ref 1))
    data;
  tbl

let zipf_stream ~seed ~n ~universe ~s =
  let rng = Hsq_util.Xoshiro.create seed in
  let z = Hsq_workload.Distribution.Zipf.create ~n:universe ~s in
  Array.init n (fun _ -> Hsq_workload.Distribution.Zipf.sample z rng)

(* --- SpaceSaving -------------------------------------------------------- *)

let test_spacesaving_bounds () =
  let data = zipf_stream ~seed:1 ~n:50_000 ~universe:5_000 ~s:1.2 in
  let sk = SS.create ~capacity:100 in
  Array.iter (SS.insert sk) data;
  let freq = frequencies data in
  let bound = SS.error_bound sk in
  Alcotest.(check bool) "bound = ceil(n/k)" true (bound = (50_000 + 99) / 100);
  List.iter
    (fun (v, est, err) ->
      let truth = match Hashtbl.find_opt freq v with Some c -> !c | None -> 0 in
      Alcotest.(check bool) (Printf.sprintf "item %d: est %d >= true %d" v est truth) true
        (est >= truth);
      Alcotest.(check bool)
        (Printf.sprintf "item %d: est - err <= true" v)
        true
        (est - err <= truth);
      Alcotest.(check bool) "err within n/k" true (err <= bound))
    (SS.entries sk)

let test_spacesaving_tracks_all_heavy () =
  let data = zipf_stream ~seed:2 ~n:40_000 ~universe:2_000 ~s:1.3 in
  let sk = SS.create ~capacity:64 in
  Array.iter (SS.insert sk) data;
  let freq = frequencies data in
  let nk = 40_000 / 64 in
  Hashtbl.iter
    (fun v c ->
      if !c > nk then
        Alcotest.(check bool)
          (Printf.sprintf "heavy item %d (count %d) tracked" v !c)
          true
          (List.exists (fun (x, _, _) -> x = v) (SS.entries sk)))
    freq

let test_spacesaving_capacity_respected () =
  let sk = SS.create ~capacity:10 in
  for i = 1 to 10_000 do
    SS.insert sk (i mod 500)
  done;
  Alcotest.(check bool) "size <= capacity" true (SS.size sk <= 10)

let test_spacesaving_validation () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Spacesaving.create: capacity must be >= 1")
    (fun () -> ignore (SS.create ~capacity:0))

(* --- Misra-Gries --------------------------------------------------------- *)

let test_misra_gries_bounds () =
  let data = zipf_stream ~seed:3 ~n:50_000 ~universe:5_000 ~s:1.2 in
  let mg = MG.create ~capacity:100 in
  Array.iter (MG.insert mg) data;
  let freq = frequencies data in
  let bound = MG.error_bound mg in
  Hashtbl.iter
    (fun v c ->
      let est = MG.estimate mg v in
      Alcotest.(check bool) (Printf.sprintf "item %d: est %d <= true %d" v est !c) true (est <= !c);
      Alcotest.(check bool)
        (Printf.sprintf "item %d: true - est <= n/(k+1)" v)
        true
        (!c - est <= bound))
    freq

let test_sketches_agree_on_heavy_items () =
  (* On a very skewed stream both sketches must nail the top item. *)
  let data = zipf_stream ~seed:4 ~n:30_000 ~universe:1_000 ~s:1.5 in
  let ss = SS.create ~capacity:50 and mg = MG.create ~capacity:50 in
  Array.iter
    (fun v ->
      SS.insert ss v;
      MG.insert mg v)
    data;
  let top_ss = match SS.entries ss with (v, _, _) :: _ -> v | [] -> -1 in
  let top_mg = match MG.entries mg with (v, _) :: _ -> v | [] -> -2 in
  Alcotest.(check int) "same top item" top_ss top_mg

(* --- Union heavy hitters -------------------------------------------------- *)

let build_hh ~seed ~steps ~step_size ~tail ~s =
  let config = Hsq.Config.make ~kappa:3 ~block_size:32 (Hsq.Config.Epsilon 0.05) in
  let hh = HH.create ~capacity:128 config in
  let all = ref [] in
  let per_step = zipf_stream ~seed ~n:((steps * step_size) + tail) ~universe:3_000 ~s in
  let idx = ref 0 in
  for _ = 1 to steps do
    for _ = 1 to step_size do
      HH.observe hh per_step.(!idx);
      all := per_step.(!idx) :: !all;
      incr idx
    done;
    ignore (HH.end_time_step hh)
  done;
  for _ = 1 to tail do
    HH.observe hh per_step.(!idx);
    all := per_step.(!idx) :: !all;
    incr idx
  done;
  (hh, frequencies (Array.of_list !all))

let check_guarantees hh freq ~phi =
  let n = HH.total_size hh in
  let m = HH.stream_size hh in
  let threshold = int_of_float (ceil (phi *. float_of_int n)) in
  let slack = m / HH.capacity hh in
  let hits, _report = HH.frequent hh ~phi in
  (* Completeness: every truly frequent value is returned. *)
  Hashtbl.iter
    (fun v c ->
      if !c >= threshold then
        Alcotest.(check bool)
          (Printf.sprintf "frequent value %d (count %d >= %d) returned" v !c threshold)
          true
          (List.exists (fun (h : HH.hit) -> h.value = v) hits))
    freq;
  (* Soundness: nothing far below the threshold; bounds bracket truth. *)
  List.iter
    (fun (h : HH.hit) ->
      let truth = match Hashtbl.find_opt freq h.value with Some c -> !c | None -> 0 in
      Alcotest.(check bool)
        (Printf.sprintf "hit %d: bounds [%d,%d] bracket true %d" h.value h.lower h.upper truth)
        true
        (h.lower <= truth && truth <= h.upper);
      Alcotest.(check bool)
        (Printf.sprintf "hit %d not spurious (true %d >= %d - %d)" h.value truth threshold slack)
        true
        (truth >= threshold - slack))
    hits

let test_union_hh_guarantees () =
  let hh, freq = build_hh ~seed:5 ~steps:8 ~step_size:2_000 ~tail:1_500 ~s:1.2 in
  List.iter (fun phi -> check_guarantees hh freq ~phi) [ 0.01; 0.02; 0.05 ]

let test_union_hh_uniform_finds_nothing_heavy () =
  (* Uniform data: no value close to 5% frequency; result must be empty. *)
  let config = Hsq.Config.make ~kappa:3 ~block_size:32 (Hsq.Config.Epsilon 0.05) in
  let hh = HH.create ~capacity:128 config in
  let rng = Hsq_util.Xoshiro.create 6 in
  for _ = 1 to 5 do
    ignore (HH.ingest_batch hh (Array.init 2_000 (fun _ -> Hsq_util.Xoshiro.int rng 100_000)))
  done;
  let hits, _ = HH.frequent hh ~phi:0.05 in
  Alcotest.(check int) "no heavy hitters in uniform data" 0 (List.length hits)

let test_union_hh_hist_only_is_exact () =
  let hh, freq = build_hh ~seed:7 ~steps:6 ~step_size:1_500 ~tail:0 ~s:1.3 in
  let hits, _ = HH.frequent hh ~phi:0.02 in
  Alcotest.(check bool) "found something" true (hits <> []);
  List.iter
    (fun (h : HH.hit) ->
      let truth = match Hashtbl.find_opt freq h.value with Some c -> !c | None -> 0 in
      Alcotest.(check int) (Printf.sprintf "value %d exact" h.value) truth h.lower;
      Alcotest.(check int) "tight bounds" h.lower h.upper)
    hits

let test_union_hh_window () =
  (* A value heavy only in recent steps: invisible globally at high phi,
     dominant in the window. *)
  let config = Hsq.Config.make ~kappa:3 ~block_size:32 (Hsq.Config.Epsilon 0.05) in
  let hh = HH.create ~capacity:64 config in
  let rng = Hsq_util.Xoshiro.create 8 in
  for _ = 1 to 12 do
    ignore (HH.ingest_batch hh (Array.init 1_000 (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000)))
  done;
  ignore (HH.ingest_batch hh (Array.make 1_000 777));
  (* window of the last step only *)
  (match HH.frequent_window hh ~window:1 ~phi:0.5 with
  | Ok (hits, _) ->
    Alcotest.(check bool) "777 dominates the window" true
      (List.exists (fun (h : HH.hit) -> h.value = 777) hits)
  | Error _ -> Alcotest.fail "window 1 must be aligned");
  let global_hits, _ = HH.frequent hh ~phi:0.5 in
  Alcotest.(check int) "777 not globally heavy at phi=0.5" 0 (List.length global_hits)

let test_union_hh_validation () =
  let config = Hsq.Config.make ~kappa:3 ~block_size:32 (Hsq.Config.Epsilon 0.05) in
  let hh = HH.create ~capacity:16 config in
  ignore (HH.ingest_batch hh [| 1; 1; 2 |]);
  Alcotest.(check bool) "phi below 1/capacity rejected" true
    (try
       ignore (HH.frequent hh ~phi:0.01);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "phi = 1 rejected" true
    (try
       ignore (HH.frequent hh ~phi:1.0);
       false
     with Invalid_argument _ -> true)

let test_union_hh_io_bounded () =
  let hh, _ = build_hh ~seed:9 ~steps:10 ~step_size:2_000 ~tail:500 ~s:1.1 in
  let phi = 0.02 in
  let _, report = HH.frequent hh ~phi in
  (* candidate probes ~ 1/phi per partition + 2 rank searches per
     candidate, each O(log n/B) *)
  let parts = Hsq_hist.Level_index.partition_count (Hsq.Engine.hist (HH.engine hh)) in
  let cap = (parts * (int_of_float (1. /. phi) + 1)) + (report.HH.candidates * parts * 2 * 12) in
  Alcotest.(check bool)
    (Printf.sprintf "io %d within %d" (Hsq_storage.Io_stats.total report.HH.io) cap)
    true
    (Hsq_storage.Io_stats.total report.HH.io <= cap)

let prop_union_hh_random =
  QCheck.Test.make ~name:"union HH guarantees on random skewed instances" ~count:15
    QCheck.(triple (int_range 1 6) (int_range 100 800) (int_range 0 400))
    (fun (steps, step_size, tail) ->
      let seed = steps + (step_size * 3) + (tail * 7) in
      let hh, freq = build_hh ~seed ~steps ~step_size ~tail ~s:1.4 in
      let phi = 0.05 in
      let n = HH.total_size hh in
      let threshold = int_of_float (ceil (phi *. float_of_int n)) in
      let hits, _ = HH.frequent hh ~phi in
      let complete =
        Hashtbl.fold
          (fun v c acc ->
            acc && (!c < threshold || List.exists (fun (h : HH.hit) -> h.value = v) hits))
          freq true
      in
      let bracket =
        List.for_all
          (fun (h : HH.hit) ->
            let truth = match Hashtbl.find_opt freq h.value with Some c -> !c | None -> 0 in
            h.lower <= truth && truth <= h.upper)
          hits
      in
      complete && bracket)

let () =
  Alcotest.run "heavy_hitters"
    [
      ( "spacesaving",
        [
          Alcotest.test_case "estimate bounds" `Quick test_spacesaving_bounds;
          Alcotest.test_case "tracks all heavy items" `Quick test_spacesaving_tracks_all_heavy;
          Alcotest.test_case "capacity respected" `Quick test_spacesaving_capacity_respected;
          Alcotest.test_case "validation" `Quick test_spacesaving_validation;
        ] );
      ( "misra_gries",
        [
          Alcotest.test_case "estimate bounds" `Quick test_misra_gries_bounds;
          Alcotest.test_case "sketches agree on top item" `Quick test_sketches_agree_on_heavy_items;
        ] );
      ( "union",
        [
          Alcotest.test_case "completeness + soundness" `Quick test_union_hh_guarantees;
          Alcotest.test_case "uniform finds nothing" `Quick test_union_hh_uniform_finds_nothing_heavy;
          Alcotest.test_case "hist-only exact" `Quick test_union_hh_hist_only_is_exact;
          Alcotest.test_case "windowed" `Quick test_union_hh_window;
          Alcotest.test_case "validation" `Quick test_union_hh_validation;
          Alcotest.test_case "io bounded" `Quick test_union_hh_io_bounded;
          QCheck_alcotest.to_alcotest prop_union_hh_random;
        ] );
    ]
