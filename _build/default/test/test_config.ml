(* Tests for Config: Algorithm 1 derivations, the memory-mode 50/50
   split of Section 3.1, and parameter validation. *)

module C = Hsq.Config

let test_epsilon_mode_derivations () =
  (* Algorithm 1: eps1 = eps/2, beta1 = ceil(1/eps1) + 1. *)
  let c = C.make (C.Epsilon 0.5) in
  Alcotest.(check int) "beta1 for eps=0.5" 5 (C.beta1 c);
  (* eps1 = 0.25 -> ceil(4) + 1 *)
  let c2 = C.make (C.Epsilon 0.01) in
  Alcotest.(check int) "beta1 for eps=0.01" 201 (C.beta1 c2);
  Alcotest.(check (option (float 1e-12))) "gk eps = eps/8" (Some 0.00125) (C.gk_epsilon c2);
  Alcotest.(check (option int)) "no stream budget in eps mode" None (C.stream_words c2)

let test_memory_mode_split () =
  let c = C.make ~kappa:10 ~steps_hint:100 (C.Memory_words 10_000) in
  (* 50/50 split *)
  Alcotest.(check (option int)) "stream half" (Some 5_000) (C.stream_words c);
  Alcotest.(check bool) "beta1 positive" true (C.beta1 c >= 2);
  (* 3 words per entry over max_partitions *)
  let expected = ((10_000 / 2) - 16) / (3 * C.max_partitions c) in
  Alcotest.(check int) "beta1 formula" (max 2 expected) (C.beta1 c);
  Alcotest.(check (option (float 0.0))) "no fixed gk eps" None (C.gk_epsilon c)

let test_stream_fraction () =
  let c = C.make ~stream_fraction:0.8 (C.Memory_words 10_000) in
  Alcotest.(check (option int)) "80% to stream" (Some 8_000) (C.stream_words c);
  let c2 = C.make ~stream_fraction:0.2 (C.Memory_words 10_000) in
  Alcotest.(check (option int)) "20% to stream" (Some 2_000) (C.stream_words c2);
  Alcotest.(check bool) "more hist memory -> bigger beta1" true (C.beta1 c2 > C.beta1 c)

let test_max_partitions () =
  (* kappa * (ceil(log_kappa steps) + 1) *)
  let c = C.make ~kappa:10 ~steps_hint:100 (C.Epsilon 0.1) in
  Alcotest.(check int) "kappa=10 T=100" 30 (C.max_partitions c);
  let c2 = C.make ~kappa:2 ~steps_hint:64 (C.Epsilon 0.1) in
  Alcotest.(check int) "kappa=2 T=64" 14 (C.max_partitions c2)

let test_validation () =
  let bad msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  bad "Config.make: epsilon not in (0,1)" (fun () -> ignore (C.make (C.Epsilon 0.0)));
  bad "Config.make: epsilon not in (0,1)" (fun () -> ignore (C.make (C.Epsilon 1.0)));
  bad "Config.make: memory budget below 128 words" (fun () ->
      ignore (C.make (C.Memory_words 10)));
  bad "Config.make: kappa must be >= 2" (fun () -> ignore (C.make ~kappa:1 (C.Epsilon 0.1)));
  bad "Config.make: block_size must be >= 2" (fun () ->
      ignore (C.make ~block_size:1 (C.Epsilon 0.1)));
  bad "Config.make: steps_hint must be >= 1" (fun () ->
      ignore (C.make ~steps_hint:0 (C.Epsilon 0.1)));
  bad "Config.make: stream_fraction must lie in (0,1)" (fun () ->
      ignore (C.make ~stream_fraction:1.0 (C.Epsilon 0.1)));
  bad "Config.make: sort_domains must be >= 1" (fun () ->
      ignore (C.make ~sort_domains:0 (C.Epsilon 0.1)))

let test_defaults () =
  Alcotest.(check int) "kappa" 10 C.default.C.kappa;
  Alcotest.(check int) "block size" 256 C.default.C.block_size;
  Alcotest.(check (float 1e-9)) "split" 0.5 C.default.C.stream_fraction;
  Alcotest.(check bool) "sequential sort" true (C.default.C.sort_domains = None)

let prop_beta1_scales_with_memory =
  QCheck.Test.make ~name:"beta1 monotone in memory budget" ~count:100
    QCheck.(pair (int_range 200 100_000) (int_range 200 100_000))
    (fun (w1, w2) ->
      let b w = C.beta1 (C.make (C.Memory_words w)) in
      if w1 <= w2 then b w1 <= b w2 else b w1 >= b w2)

let () =
  Alcotest.run "config"
    [
      ( "derivations",
        [
          Alcotest.test_case "epsilon mode (Algorithm 1)" `Quick test_epsilon_mode_derivations;
          Alcotest.test_case "memory mode split" `Quick test_memory_mode_split;
          Alcotest.test_case "stream fraction" `Quick test_stream_fraction;
          Alcotest.test_case "max partitions" `Quick test_max_partitions;
          QCheck_alcotest.to_alcotest prop_beta1_scales_with_memory;
        ] );
      ( "validation",
        [
          Alcotest.test_case "rejects bad parameters" `Quick test_validation;
          Alcotest.test_case "defaults" `Quick test_defaults;
        ] );
    ]
