(* Tests for the Greenwald-Khanna sketch: the eps*n rank guarantee on
   adversarial and random streams, exact min/max, capped-memory mode. *)

open Hsq_sketch

(* Rank error of answering rank [r] with value [v] against the sorted
   ground truth: distance from r to [ |{x < v}| + 1, |{x <= v}| ]. *)
let rank_error sorted ~rank ~value =
  let upper = Hsq_util.Sorted.rank sorted value in
  let lower = min upper (Hsq_util.Sorted.rank_strict sorted value + 1) in
  if rank < lower then lower - rank else if rank > upper then rank - upper else 0

let max_error_over_all_ranks gk sorted =
  let n = Array.length sorted in
  let worst = ref 0 in
  for r = 1 to n do
    let v = Gk.query_rank gk r in
    let e = rank_error sorted ~rank:r ~value:v in
    if e > !worst then worst := e
  done;
  !worst

let feed epsilon data =
  let gk = Gk.create ~epsilon in
  Array.iter (Gk.insert gk) data;
  gk

let check_error_bound ~epsilon data =
  let gk = feed epsilon data in
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let bound = int_of_float (ceil (epsilon *. float_of_int (Array.length data))) in
  let worst = max_error_over_all_ranks gk sorted in
  Alcotest.(check bool)
    (Printf.sprintf "worst error %d <= bound %d" worst bound)
    true (worst <= bound)

let test_random_stream () =
  let rng = Hsq_util.Xoshiro.create 1 in
  check_error_bound ~epsilon:0.02 (Array.init 20_000 (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000))

let test_sorted_stream () = check_error_bound ~epsilon:0.02 (Array.init 20_000 (fun i -> i))

let test_reverse_sorted_stream () =
  check_error_bound ~epsilon:0.02 (Array.init 20_000 (fun i -> 20_000 - i))

let test_constant_stream () = check_error_bound ~epsilon:0.05 (Array.make 10_000 42)

let test_two_values () =
  check_error_bound ~epsilon:0.05 (Array.init 10_000 (fun i -> i mod 2))

let test_small_streams () =
  List.iter
    (fun n -> check_error_bound ~epsilon:0.1 (Array.init n (fun i -> (i * 7919) mod 101)))
    [ 1; 2; 3; 5; 10; 17 ]

let test_min_max_exact () =
  let rng = Hsq_util.Xoshiro.create 4 in
  let data = Array.init 5_000 (fun _ -> 10 + Hsq_util.Xoshiro.int rng 1_000_000) in
  let gk = feed 0.01 data in
  let sorted = Array.copy data in
  Array.sort compare sorted;
  Alcotest.(check int) "min exact" sorted.(0) (Gk.min_value gk);
  Alcotest.(check int) "max exact" sorted.(Array.length sorted - 1) (Gk.max_value gk);
  Alcotest.(check int) "rank 1 returns min" sorted.(0) (Gk.query_rank gk 1)

let test_space_logarithmic () =
  (* O((1/eps) log(eps n)) tuples; generous constant of 20/eps. *)
  let rng = Hsq_util.Xoshiro.create 5 in
  let gk = Gk.create ~epsilon:0.01 in
  for _ = 1 to 200_000 do
    Gk.insert gk (Hsq_util.Xoshiro.int rng max_int)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "size %d within 20/eps" (Gk.size gk))
    true
    (Gk.size gk <= 2000)

let test_invariant_holds () =
  (* g + delta <= floor(2 eps n) for every live tuple (GK's invariant). *)
  let rng = Hsq_util.Xoshiro.create 6 in
  let gk = Gk.create ~epsilon:0.05 in
  for _ = 1 to 5_000 do
    Gk.insert gk (Hsq_util.Xoshiro.int rng 1000)
  done;
  let n = Gk.count gk in
  let thr = int_of_float (2.0 *. 0.05 *. float_of_int n) in
  List.iter
    (fun (_, rmin, rmax) ->
      Alcotest.(check bool) "tuple within invariant" true (rmax - rmin <= thr))
    (Gk.dump gk);
  (* rmin of last tuple equals n *)
  let last = List.nth (Gk.dump gk) (List.length (Gk.dump gk) - 1) in
  let _, _, rmax_last = last in
  Alcotest.(check int) "last rmax = n" n rmax_last

let test_empty_raises () =
  let gk = Gk.create ~epsilon:0.1 in
  Alcotest.check_raises "empty query" (Invalid_argument "Gk.query_rank: empty sketch") (fun () ->
      ignore (Gk.query_rank gk 1))

let test_bad_epsilon () =
  Alcotest.check_raises "eps 0" (Invalid_argument "Gk.create: epsilon not in (0,1)") (fun () ->
      ignore (Gk.create ~epsilon:0.0))

let test_capped_budget_respected () =
  let rng = Hsq_util.Xoshiro.create 7 in
  let words = 600 in
  let gk = Gk.create_capped ~words in
  for i = 1 to 100_000 do
    Gk.insert gk (Hsq_util.Xoshiro.int rng max_int);
    if i mod 9_973 = 0 then
      Alcotest.(check bool) "budget held mid-stream" true (Gk.memory_words gk <= words)
  done;
  Alcotest.(check bool) "budget held at end" true (Gk.memory_words gk <= words)

let test_capped_error_tracks_effective_epsilon () =
  let rng = Hsq_util.Xoshiro.create 8 in
  let data = Array.init 50_000 (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000) in
  let gk = Gk.create_capped ~words:2_000 in
  Array.iter (Gk.insert gk) data;
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let bound = int_of_float (ceil (Gk.epsilon gk *. float_of_int (Array.length data))) in
  let worst = max_error_over_all_ranks gk sorted in
  Alcotest.(check bool)
    (Printf.sprintf "capped worst %d <= eps_eff bound %d" worst bound)
    true (worst <= bound)

let test_rank_of_consistency () =
  let data = Array.init 10_000 (fun i -> i) in
  let gk = feed 0.02 data in
  List.iter
    (fun v ->
      let est = Gk.rank_of gk v in
      Alcotest.(check bool)
        (Printf.sprintf "rank_of %d ~ %d (est %d)" v (v + 1) est)
        true
        (abs (est - (v + 1)) <= 400 (* 2 eps n *)))
    [ 0; 100; 5000; 9999 ]

(* Property: the eps bound holds for arbitrary small random streams. *)
let prop_error_bound =
  QCheck.Test.make ~name:"GK eps*n bound on random streams" ~count:60
    QCheck.(pair (list_of_size Gen.(1 -- 400) (int_bound 1000)) (int_range 1 20))
    (fun (l, e10) ->
      let epsilon = float_of_int e10 /. 100.0 in
      let data = Array.of_list l in
      let gk = feed epsilon data in
      let sorted = Array.copy data in
      Array.sort compare sorted;
      let bound = int_of_float (ceil (epsilon *. float_of_int (Array.length data))) in
      max_error_over_all_ranks gk sorted <= bound)

let prop_monotone_queries =
  QCheck.Test.make ~name:"GK query_rank monotone in rank" ~count:50
    QCheck.(list_of_size Gen.(2 -- 300) (int_bound 10_000))
    (fun l ->
      let gk = feed 0.05 (Array.of_list l) in
      let n = List.length l in
      let prev = ref min_int in
      let ok = ref true in
      for r = 1 to n do
        let v = Gk.query_rank gk r in
        if v < !prev then ok := false;
        prev := v
      done;
      !ok)

(* --- Mergeability ------------------------------------------------------ *)

let check_merge_bound ~eps_a ~eps_b data_a data_b =
  let a = feed eps_a data_a and b = feed eps_b data_b in
  let merged = Gk.merge a b in
  Alcotest.(check int) "count" (Array.length data_a + Array.length data_b) (Gk.count merged);
  let union = Array.append data_a data_b in
  Array.sort compare union;
  let bound =
    int_of_float
      (ceil
         ((eps_a *. float_of_int (Array.length data_a))
         +. (eps_b *. float_of_int (Array.length data_b))))
    + 2
  in
  let n = Array.length union in
  for r = 1 to n do
    if r mod 13 = 0 || r = 1 || r = n then begin
      let v = Gk.query_rank merged r in
      let e = rank_error union ~rank:r ~value:v in
      if e > bound then Alcotest.failf "merged rank %d: error %d > additive bound %d" r e bound
    end
  done

let test_merge_same_epsilon () =
  let rng = Hsq_util.Xoshiro.create 11 in
  check_merge_bound ~eps_a:0.02 ~eps_b:0.02
    (Array.init 10_000 (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000))
    (Array.init 15_000 (fun _ -> Hsq_util.Xoshiro.int rng 1_000_000))

let test_merge_disjoint_ranges () =
  (* A holds small values, B large: the merge must stitch them. *)
  check_merge_bound ~eps_a:0.05 ~eps_b:0.05
    (Array.init 5_000 (fun i -> i))
    (Array.init 5_000 (fun i -> 1_000_000 + i))

let test_merge_mixed_epsilons_and_sizes () =
  let rng = Hsq_util.Xoshiro.create 12 in
  check_merge_bound ~eps_a:0.01 ~eps_b:0.1
    (Array.init 20_000 (fun _ -> Hsq_util.Xoshiro.int rng 50_000))
    (Array.init 500 (fun _ -> Hsq_util.Xoshiro.int rng 50_000))

let test_merge_with_empty () =
  let a = feed 0.05 (Array.init 1_000 (fun i -> i)) in
  let empty = Gk.create ~epsilon:0.05 in
  let m1 = Gk.merge a empty and m2 = Gk.merge empty a in
  Alcotest.(check int) "a + empty count" 1_000 (Gk.count m1);
  Alcotest.(check int) "empty + a count" 1_000 (Gk.count m2);
  Alcotest.(check int) "median survives" (Gk.query_rank a 500) (Gk.query_rank m1 500)

let test_merge_preserves_extremes () =
  let a = feed 0.05 [| 5; 100; 7 |] and b = feed 0.05 [| 1; 1_000 |] in
  let m = Gk.merge a b in
  Alcotest.(check int) "min" 1 (Gk.min_value m);
  Alcotest.(check int) "max" 1_000 (Gk.max_value m)

let test_merge_rejects_capped () =
  let a = Gk.create_capped ~words:200 and b = Gk.create ~epsilon:0.1 in
  Gk.insert a 1;
  Gk.insert b 2;
  Alcotest.check_raises "capped rejected"
    (Invalid_argument "Gk.merge: only fixed-epsilon sketches are mergeable") (fun () ->
      ignore (Gk.merge a b))

let prop_merge_bound =
  QCheck.Test.make ~name:"GK merge additive error bound" ~count:40
    QCheck.(pair (list_of_size Gen.(1 -- 300) (int_bound 5_000)) (list_of_size Gen.(1 -- 300) (int_bound 5_000)))
    (fun (la, lb) ->
      let a = feed 0.05 (Array.of_list la) and b = feed 0.05 (Array.of_list lb) in
      let merged = Gk.merge a b in
      let union = Array.of_list (List.sort compare (la @ lb)) in
      let n = Array.length union in
      let bound =
        int_of_float (ceil (0.05 *. float_of_int n)) + 2
      in
      let ok = ref true in
      for r = 1 to n do
        let v = Gk.query_rank merged r in
        if rank_error union ~rank:r ~value:v > bound then ok := false
      done;
      !ok)

let () =
  Alcotest.run "gk"
    [
      ( "error bound",
        [
          Alcotest.test_case "random stream" `Quick test_random_stream;
          Alcotest.test_case "sorted stream" `Quick test_sorted_stream;
          Alcotest.test_case "reverse sorted" `Quick test_reverse_sorted_stream;
          Alcotest.test_case "constant stream" `Quick test_constant_stream;
          Alcotest.test_case "two values" `Quick test_two_values;
          Alcotest.test_case "small streams" `Quick test_small_streams;
          QCheck_alcotest.to_alcotest prop_error_bound;
        ] );
      ( "structure",
        [
          Alcotest.test_case "min/max exact" `Quick test_min_max_exact;
          Alcotest.test_case "space logarithmic" `Slow test_space_logarithmic;
          Alcotest.test_case "g+delta invariant" `Quick test_invariant_holds;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
          Alcotest.test_case "bad epsilon" `Quick test_bad_epsilon;
          Alcotest.test_case "rank_of" `Quick test_rank_of_consistency;
          QCheck_alcotest.to_alcotest prop_monotone_queries;
        ] );
      ( "merge",
        [
          Alcotest.test_case "same epsilon" `Quick test_merge_same_epsilon;
          Alcotest.test_case "disjoint ranges" `Quick test_merge_disjoint_ranges;
          Alcotest.test_case "mixed eps and sizes" `Quick test_merge_mixed_epsilons_and_sizes;
          Alcotest.test_case "empty sides" `Quick test_merge_with_empty;
          Alcotest.test_case "extremes preserved" `Quick test_merge_preserves_extremes;
          Alcotest.test_case "capped rejected" `Quick test_merge_rejects_capped;
          QCheck_alcotest.to_alcotest prop_merge_bound;
        ] );
      ( "capped",
        [
          Alcotest.test_case "budget respected" `Quick test_capped_budget_respected;
          Alcotest.test_case "error tracks eps_eff" `Quick test_capped_error_tracks_effective_epsilon;
        ] );
    ]
