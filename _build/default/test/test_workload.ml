(* Tests for workload generators (Section 3.1 datasets), distributions,
   and the oracle / relative-error metric. *)

module D = Hsq_workload.Distribution
module DS = Hsq_workload.Datasets
module O = Hsq_workload.Oracle

let test_normal_moments () =
  let rng = Hsq_util.Xoshiro.create 91 in
  let n = 100_000 in
  let acc = Hsq_util.Stats.create () in
  for _ = 1 to n do
    Hsq_util.Stats.add acc (D.normal ~mean:100.0 ~stddev:15.0 rng)
  done;
  let s = Hsq_util.Stats.summary acc in
  Alcotest.(check bool) "mean" true (abs_float (s.Hsq_util.Stats.mean -. 100.0) < 0.5);
  Alcotest.(check bool) "stddev" true (abs_float (s.Hsq_util.Stats.stddev -. 15.0) < 0.5)

let test_uniform_range () =
  let rng = Hsq_util.Xoshiro.create 92 in
  for _ = 1 to 10_000 do
    let v = D.uniform_int ~lo:10 ~hi:20 rng in
    Alcotest.(check bool) "range" true (v >= 10 && v < 20)
  done

let test_pareto_heavy_tail () =
  let rng = Hsq_util.Xoshiro.create 93 in
  let n = 50_000 in
  let above = ref 0 in
  for _ = 1 to n do
    if D.pareto ~scale:1.0 ~shape:1.0 rng > 10.0 then incr above
  done;
  (* P(X > 10) = 1/10 for shape 1; expect about 5000. *)
  Alcotest.(check bool)
    (Printf.sprintf "tail mass %d" !above)
    true
    (!above > 4_000 && !above < 6_000)

let test_zipf_skew () =
  let rng = Hsq_util.Xoshiro.create 94 in
  let z = D.Zipf.create ~n:1000 ~s:1.0 in
  Alcotest.(check int) "size" 1000 (D.Zipf.size z);
  let counts = Array.make 1000 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = D.Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  (* rank 0 should be roughly twice as frequent as rank 1. *)
  Alcotest.(check bool) "rank0 > rank1 > rank9" true (counts.(0) > counts.(1) && counts.(1) > counts.(9));
  let ratio = float_of_int counts.(0) /. float_of_int counts.(1) in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f ~ 2" ratio) true (ratio > 1.6 && ratio < 2.5)

let test_datasets_deterministic () =
  List.iter
    (fun name ->
      let a = DS.next_batch (DS.by_name ~seed:7 name) 500 in
      let b = DS.next_batch (DS.by_name ~seed:7 name) 500 in
      Alcotest.(check (array int)) (name ^ " deterministic") a b)
    DS.names

let test_datasets_respect_universe () =
  List.iter
    (fun name ->
      let ds = DS.by_name ~seed:8 name in
      let bound = 1 lsl DS.universe_bits ds in
      for _ = 1 to 5 do
        Array.iter
          (fun v ->
            if not (v >= 0 && v < bound) then
              Alcotest.failf "%s produced %d outside [0, 2^%d)" name v (DS.universe_bits ds))
          (DS.next_batch ds 2_000)
      done)
    DS.names

let test_dataset_shapes () =
  (* Normal concentrates around 1e8; wikipedia is heavy-tailed;
     network has few distinct values relative to volume. *)
  let normal = DS.next_batch (DS.normal ~seed:9) 20_000 in
  let within =
    Array.fold_left
      (fun acc v -> if abs (v - 100_000_000) < 30_000_000 then acc + 1 else acc)
      0 normal
  in
  Alcotest.(check bool) "normal concentrated" true (within > 19_800);
  let wiki = DS.next_batch (DS.wikipedia ~seed:9) 20_000 in
  let sorted = Array.copy wiki in
  Array.sort compare sorted;
  let median = sorted.(10_000) and p999 = sorted.(19_980) in
  Alcotest.(check bool)
    (Printf.sprintf "wiki heavy tail: p999=%d >> median=%d" p999 median)
    true
    (p999 > 20 * median);
  let net = DS.next_batch (DS.network ~seed:9) 20_000 in
  let distinct = List.length (List.sort_uniq compare (Array.to_list net)) in
  Alcotest.(check bool)
    (Printf.sprintf "network duplicate-heavy: %d distinct" distinct)
    true
    (distinct < 15_000)

let test_by_name_unknown () =
  Alcotest.check_raises "unknown" (Invalid_argument "Datasets.by_name: unknown dataset \"nope\"")
    (fun () -> ignore (DS.by_name ~seed:1 "nope"))

let test_oracle_rank_error_metric () =
  let o = O.create () in
  O.add_batch o [| 10; 20; 20; 30 |];
  (* value 20 answers ranks 2..3 *)
  Alcotest.(check int) "inside interval" 0 (O.rank_error o ~rank:2 ~value:20);
  Alcotest.(check int) "inside interval hi" 0 (O.rank_error o ~rank:3 ~value:20);
  Alcotest.(check int) "below" 1 (O.rank_error o ~rank:1 ~value:20);
  Alcotest.(check int) "above" 1 (O.rank_error o ~rank:4 ~value:20);
  (* value 25 (absent) answers rank 3 only *)
  Alcotest.(check int) "absent value ok" 0 (O.rank_error o ~rank:3 ~value:25);
  Alcotest.(check int) "absent value off" 1 (O.rank_error o ~rank:4 ~value:25);
  Alcotest.(check int) "quantile" 20 (O.quantile o 0.5);
  Alcotest.(check (float 1e-9)) "relative error" 0.5 (O.relative_error o ~phi:0.5 ~value:10)

let prop_oracle_quantile_matches_sorted =
  QCheck.Test.make ~name:"oracle quantile = Sorted.quantile" ~count:100
    QCheck.(pair (list_of_size Gen.(1 -- 200) small_int) (int_range 1 100))
    (fun (l, p) ->
      let phi = float_of_int p /. 100.0 in
      let o = O.create () in
      List.iter (O.add o) l;
      let sorted = Array.of_list (List.sort compare l) in
      O.quantile o phi = Hsq_util.Sorted.quantile sorted phi)

let () =
  Alcotest.run "workload"
    [
      ( "distributions",
        [
          Alcotest.test_case "normal moments" `Slow test_normal_moments;
          Alcotest.test_case "uniform range" `Quick test_uniform_range;
          Alcotest.test_case "pareto tail" `Quick test_pareto_heavy_tail;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "deterministic" `Quick test_datasets_deterministic;
          Alcotest.test_case "universe bounds" `Quick test_datasets_respect_universe;
          Alcotest.test_case "distribution shapes" `Quick test_dataset_shapes;
          Alcotest.test_case "unknown name" `Quick test_by_name_unknown;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "rank error metric" `Quick test_oracle_rank_error_metric;
          QCheck_alcotest.to_alcotest prop_oracle_quantile_matches_sorted;
        ] );
    ]
