(* Tests for the comparison systems: the pure-streaming baselines (and
   their warehouse-loading I/O model) and the fully-sorted strawman. *)

module B = Hsq.Baselines

(* --- Raw_store -------------------------------------------------------- *)

let test_raw_store_load_io () =
  let s = B.Raw_store.create ~kappa:10 ~block_size:10 in
  let (lr, lw), (mr, mw) = B.Raw_store.add_batch s ~elements:95 in
  Alcotest.(check int) "load reads" 0 lr;
  Alcotest.(check int) "load writes = ceil(95/10)" 10 lw;
  Alcotest.(check int) "no merge reads" 0 mr;
  Alcotest.(check int) "no merge writes" 0 mw

let test_raw_store_merge_cascade () =
  let s = B.Raw_store.create ~kappa:2 ~block_size:10 in
  (* Steps 1-2 load only; step 3 triggers a level-0 merge of 3 partitions. *)
  ignore (B.Raw_store.add_batch s ~elements:100);
  ignore (B.Raw_store.add_batch s ~elements:100);
  let _, (mr, mw) = B.Raw_store.add_batch s ~elements:100 in
  Alcotest.(check int) "merge reads 30 blocks" 30 mr;
  Alcotest.(check int) "merge writes 30 blocks" 30 mw;
  Alcotest.(check int) "blocks conserved" 30 (B.Raw_store.total_blocks s)

let test_raw_store_matches_level_index_io () =
  (* The baseline store must charge the same write volume as the real
     index (same loading paradigm), for any schedule. *)
  let kappa = 3 and block_size = 8 in
  let dev = Hsq_storage.Block_device.create_memory ~block_size () in
  let li = Hsq_hist.Level_index.create ~kappa ~beta1:4 dev in
  let raw = B.Raw_store.create ~kappa ~block_size in
  let rng = Hsq_util.Xoshiro.create 81 in
  for _ = 1 to 20 do
    let n = 8 * (1 + Hsq_util.Xoshiro.int rng 12) in
    (* block-aligned batches *)
    let real = Hsq_hist.Level_index.add_batch li (Array.init n (fun _ -> Hsq_util.Xoshiro.int rng 1000)) in
    let (_, lw), (mr, mw) = B.Raw_store.add_batch raw ~elements:n in
    Alcotest.(check int) "writes match" real.Hsq_hist.Level_index.io_total.Hsq_storage.Io_stats.writes (lw + mw);
    Alcotest.(check int) "reads match" real.Hsq_hist.Level_index.io_total.Hsq_storage.Io_stats.reads mr
  done

(* --- Streaming baselines ---------------------------------------------- *)

let drive_streaming ~algorithm ~words ~seed ~steps ~step_size =
  let rng = Hsq_util.Xoshiro.create seed in
  let b = B.Streaming.create ~algorithm ~words ~kappa:10 ~block_size:16 () in
  let oracle = Hsq_workload.Oracle.create () in
  for _ = 1 to steps do
    for _ = 1 to step_size do
      let v = Hsq_util.Xoshiro.int rng 100_000 in
      B.Streaming.observe b v;
      Hsq_workload.Oracle.add oracle v
    done;
    ignore (B.Streaming.end_time_step b)
  done;
  (b, oracle)

let test_streaming_covers_all_of_t () =
  let b, oracle = drive_streaming ~algorithm:B.Streaming.Gk_stream ~words:2_000 ~seed:82 ~steps:10 ~step_size:1_000 in
  Alcotest.(check int) "sketch covers T" (Hsq_workload.Oracle.count oracle) (B.Streaming.count b)

let test_streaming_error_proportional_to_n () =
  (* The pure-streaming weakness the paper exploits: error grows with N. *)
  let b, oracle = drive_streaming ~algorithm:B.Streaming.Gk_stream ~words:1_200 ~seed:83 ~steps:12 ~step_size:2_000 in
  let n = B.Streaming.count b in
  let eps = B.Streaming.error_bound b in
  let bound = int_of_float (ceil (eps *. float_of_int n)) in
  let r = n / 2 in
  let v = B.Streaming.query_rank b r in
  let err = Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v in
  Alcotest.(check bool) (Printf.sprintf "err %d <= eps*N = %d" err bound) true (err <= bound);
  Alcotest.(check bool) "memory held" true (B.Streaming.memory_words b <= 1_200)

let test_streaming_qdigest_and_sampler_run () =
  List.iter
    (fun algorithm ->
      let b, oracle = drive_streaming ~algorithm ~words:3_000 ~seed:84 ~steps:5 ~step_size:1_000 in
      let n = B.Streaming.count b in
      let v = B.Streaming.quantile b 0.5 in
      let err = Hsq_workload.Oracle.rank_error oracle ~rank:(n / 2) ~value:v in
      Alcotest.(check bool)
        (Printf.sprintf "%s median err=%d" (B.Streaming.algorithm_name algorithm) err)
        true
        (err <= n / 5))
    [ B.Streaming.Qdigest_stream; B.Streaming.Sampler_stream ]

let test_streaming_update_io_accumulates () =
  let b, _ = drive_streaming ~algorithm:B.Streaming.Gk_stream ~words:1_000 ~seed:85 ~steps:11 ~step_size:160 in
  let (lr, lw), (_mr, mw) = B.Streaming.update_io b in
  Alcotest.(check int) "no load reads" 0 lr;
  Alcotest.(check int) "load writes = steps * 10 blocks" 110 lw;
  Alcotest.(check bool) "merges happened" true (mw > 0)

(* --- Strawman ---------------------------------------------------------- *)

let test_strawman_accuracy () =
  let rng = Hsq_util.Xoshiro.create 86 in
  let s = B.Strawman.create ~epsilon:0.05 ~block_size:16 () in
  let oracle = Hsq_workload.Oracle.create () in
  for _ = 1 to 6 do
    for _ = 1 to 1_000 do
      let v = Hsq_util.Xoshiro.int rng 100_000 in
      B.Strawman.observe s v;
      Hsq_workload.Oracle.add oracle v
    done;
    ignore (B.Strawman.end_time_step s)
  done;
  for _ = 1 to 700 do
    let v = Hsq_util.Xoshiro.int rng 100_000 in
    B.Strawman.observe s v;
    Hsq_workload.Oracle.add oracle v
  done;
  let n = B.Strawman.total_size s in
  Alcotest.(check int) "covers T" (Hsq_workload.Oracle.count oracle) n;
  let m = B.Strawman.stream_size s in
  (* Error proportional to m only, like our algorithm. *)
  let bound = int_of_float (ceil (0.2 *. float_of_int m)) + 1 in
  List.iter
    (fun phi ->
      let r = int_of_float (ceil (phi *. float_of_int n)) in
      let v, _ = B.Strawman.accurate s ~rank:r in
      let err = Hsq_workload.Oracle.rank_error oracle ~rank:r ~value:v in
      Alcotest.(check bool) (Printf.sprintf "phi=%.2f err=%d <= %d" phi err bound) true (err <= bound))
    [ 0.01; 0.5; 0.99 ]

let test_strawman_update_io_rewrites_history () =
  let s = B.Strawman.create ~epsilon:0.1 ~block_size:8 () in
  let step k =
    for i = 1 to 800 do
      B.Strawman.observe s ((k * 1000) + i)
    done;
    B.Strawman.end_time_step s
  in
  let io1 = step 1 in
  let io5 =
    ignore (step 2);
    ignore (step 3);
    ignore (step 4);
    step 5
  in
  (* Step 5 must reread and rewrite ~4 steps of history; step 1 only
     writes one batch. *)
  Alcotest.(check bool) "step-5 io dwarfs step-1 io" true
    (Hsq_storage.Io_stats.total io5 > 4 * Hsq_storage.Io_stats.total io1)

let test_strawman_empty_raises () =
  let s = B.Strawman.create ~epsilon:0.1 ~block_size:8 () in
  Alcotest.check_raises "empty step" (Invalid_argument "Strawman.end_time_step: empty batch")
    (fun () -> ignore (B.Strawman.end_time_step s));
  Alcotest.check_raises "empty query" (Invalid_argument "Strawman.accurate: no data") (fun () ->
      ignore (B.Strawman.accurate s ~rank:1))

let () =
  Alcotest.run "baselines"
    [
      ( "raw_store",
        [
          Alcotest.test_case "load io" `Quick test_raw_store_load_io;
          Alcotest.test_case "merge cascade" `Quick test_raw_store_merge_cascade;
          Alcotest.test_case "matches level index io" `Quick test_raw_store_matches_level_index_io;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "covers all of T" `Quick test_streaming_covers_all_of_t;
          Alcotest.test_case "error ~ eps*N" `Quick test_streaming_error_proportional_to_n;
          Alcotest.test_case "qdigest + sampler" `Quick test_streaming_qdigest_and_sampler_run;
          Alcotest.test_case "update io model" `Quick test_streaming_update_io_accumulates;
        ] );
      ( "strawman",
        [
          Alcotest.test_case "accuracy ~ m" `Quick test_strawman_accuracy;
          Alcotest.test_case "update rewrites history" `Quick test_strawman_update_io_rewrites_history;
          Alcotest.test_case "empty raises" `Quick test_strawman_empty_raises;
        ] );
    ]
