(* Tests for the Q-Digest sketch: the (log2 U / k) * n rank bound,
   compression size bound, universe validation. *)

open Hsq_sketch

let rank_error sorted ~rank ~value =
  let upper = Hsq_util.Sorted.rank sorted value in
  let lower = min upper (Hsq_util.Sorted.rank_strict sorted value + 1) in
  if rank < lower then lower - rank else if rank > upper then rank - upper else 0

let check_bound ~bits ~k data =
  let qd = Qdigest.create ~bits ~k in
  Array.iter (Qdigest.insert qd) data;
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let n = Array.length data in
  let bound = int_of_float (ceil (Qdigest.error_bound qd *. float_of_int n)) in
  let worst = ref 0 in
  for r = 1 to n do
    let v = Qdigest.query_rank qd r in
    let e = rank_error sorted ~rank:r ~value:v in
    if e > !worst then worst := e
  done;
  Alcotest.(check bool) (Printf.sprintf "worst %d <= bound %d" !worst bound) true (!worst <= bound)

let test_uniform () =
  let rng = Hsq_util.Xoshiro.create 11 in
  check_bound ~bits:16 ~k:100 (Array.init 20_000 (fun _ -> Hsq_util.Xoshiro.int rng 65_536))

let test_skewed () =
  let rng = Hsq_util.Xoshiro.create 12 in
  (* 90% of mass at small values *)
  check_bound ~bits:16 ~k:100
    (Array.init 20_000 (fun _ ->
         if Hsq_util.Xoshiro.int rng 10 < 9 then Hsq_util.Xoshiro.int rng 64
         else Hsq_util.Xoshiro.int rng 65_536))

let test_constant () = check_bound ~bits:10 ~k:50 (Array.make 5_000 511)

let test_small () =
  List.iter (fun n -> check_bound ~bits:8 ~k:20 (Array.init n (fun i -> i mod 256))) [ 1; 2; 7; 64 ]

let test_size_bound () =
  let rng = Hsq_util.Xoshiro.create 13 in
  let k = 64 in
  let qd = Qdigest.create ~bits:20 ~k in
  for _ = 1 to 100_000 do
    Qdigest.insert qd (Hsq_util.Xoshiro.int rng (1 lsl 20))
  done;
  (* classic bound: at most ~3k nodes after compression; allow the
     amortised schedule a factor of 2 headroom between compressions *)
  Alcotest.(check bool)
    (Printf.sprintf "size %d <= 6k" (Qdigest.size qd))
    true
    (Qdigest.size qd <= 6 * k)

let test_universe_validation () =
  let qd = Qdigest.create ~bits:8 ~k:10 in
  Alcotest.check_raises "too large" (Invalid_argument "Qdigest.insert: value outside universe")
    (fun () -> Qdigest.insert qd 256);
  Alcotest.check_raises "negative" (Invalid_argument "Qdigest.insert: value outside universe")
    (fun () -> Qdigest.insert qd (-1))

let test_create_validation () =
  Alcotest.check_raises "bits 0" (Invalid_argument "Qdigest.create: bits out of range") (fun () ->
      ignore (Qdigest.create ~bits:0 ~k:1));
  Alcotest.check_raises "k 0" (Invalid_argument "Qdigest.create: k must be positive") (fun () ->
      ignore (Qdigest.create ~bits:8 ~k:0))

let test_capped_budget () =
  let rng = Hsq_util.Xoshiro.create 14 in
  let words = 1_000 in
  let qd = Qdigest.create_capped ~bits:20 ~words in
  for _ = 1 to 50_000 do
    Qdigest.insert qd (Hsq_util.Xoshiro.int rng (1 lsl 20))
  done;
  (* create_capped sizes k for <= 3k nodes; the schedule allows 6k
     transiently, i.e. twice the nominal budget. *)
  Alcotest.(check bool)
    (Printf.sprintf "memory %d within 2x budget" (Qdigest.memory_words qd))
    true
    (Qdigest.memory_words qd <= 2 * words)

let test_empty_raises () =
  let qd = Qdigest.create ~bits:8 ~k:10 in
  Alcotest.check_raises "empty" (Invalid_argument "Qdigest.query_rank: empty sketch") (fun () ->
      ignore (Qdigest.query_rank qd 1))

let prop_error_bound =
  QCheck.Test.make ~name:"qdigest error bound on random streams" ~count:50
    QCheck.(pair (list_of_size Gen.(1 -- 400) (int_bound 1023)) (int_range 10 60))
    (fun (l, k) ->
      let data = Array.of_list l in
      let qd = Qdigest.create ~bits:10 ~k in
      Array.iter (Qdigest.insert qd) data;
      let sorted = Array.copy data in
      Array.sort compare sorted;
      let n = Array.length data in
      let bound = int_of_float (ceil (Qdigest.error_bound qd *. float_of_int n)) in
      let ok = ref true in
      for r = 1 to n do
        let v = Qdigest.query_rank qd r in
        if rank_error sorted ~rank:r ~value:v > bound then ok := false
      done;
      !ok)

let prop_rank_of_error =
  QCheck.Test.make ~name:"qdigest rank_of within bound" ~count:50
    QCheck.(pair (list_of_size Gen.(1 -- 300) (int_bound 1023)) (int_bound 1023))
    (fun (l, v) ->
      let data = Array.of_list l in
      let qd = Qdigest.create ~bits:10 ~k:40 in
      Array.iter (Qdigest.insert qd) data;
      let sorted = Array.copy data in
      Array.sort compare sorted;
      let n = Array.length data in
      let bound = int_of_float (ceil (Qdigest.error_bound qd *. float_of_int n)) in
      abs (Qdigest.rank_of qd v - Hsq_util.Sorted.rank sorted v) <= bound)

let () =
  Alcotest.run "qdigest"
    [
      ( "error bound",
        [
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "skewed" `Quick test_skewed;
          Alcotest.test_case "constant" `Quick test_constant;
          Alcotest.test_case "small" `Quick test_small;
          QCheck_alcotest.to_alcotest prop_error_bound;
          QCheck_alcotest.to_alcotest prop_rank_of_error;
        ] );
      ( "structure",
        [
          Alcotest.test_case "size bound" `Quick test_size_bound;
          Alcotest.test_case "universe validation" `Quick test_universe_validation;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "capped budget" `Quick test_capped_budget;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
        ] );
    ]
